//! Append-only job journal: `kplexd`'s crash-recovery log.
//!
//! A server started with `--journal <path>` records every job's
//! **accepted** (`SUBMIT`), **started** (`START`) and **terminal** (`END`)
//! transitions as one fsync'd line each. On restart with the same journal,
//! every job that was accepted but never reached a terminal state — queued
//! jobs *and* jobs orphaned mid-run — is replayed back into the queue under
//! its original id, and the id counter resumes past the largest id ever
//! issued, so ids are never reused across restarts.
//!
//! Durability contract: a job is journaled *before* its `SUBMIT` is
//! acknowledged, so an acknowledged job survives a crash. The terminal
//! record is written when the job finishes *organically*; a shutdown (or
//! crash) between acceptance and the terminal record replays the job on
//! restart, re-running work whose results died with the process. Result
//! buffers are **not** journaled — a replayed job re-enumerates from
//! scratch; journaling the results themselves is ruled out by the paper's
//! 10⁹-plex result sets. Instead the journal records the **delivery
//! offset** (`DELIVERED`): the highest sequence number any client has
//! consumed. A replayed job streams only from that floor, so a restart
//! does not re-deliver the consumed prefix. `DELIVERED` records are
//! **batched and coalesced** by the streaming path (one record per batch
//! or idle flush, never one fsync per result), so the floor can lag the
//! truth by up to one batch — a crash inside that window re-delivers at
//! most that many results, the one deliberate at-least-once residue.
//!
//! Torn writes: each record is appended and fsync'd as one line, so a crash
//! mid-append leaves at most one truncated final line, which replay
//! tolerates (the un-acknowledged record it belongs to is simply lost). A
//! malformed record anywhere *before* the tail is real corruption and fails
//! the replay loudly rather than silently dropping jobs.
//!
//! Growth: [`Journal::open`] compacts the file before reopening it for
//! append — terminal jobs' records are dropped and only live jobs (plus a
//! `NEXT` id floor) are rewritten, via a temp file + atomic
//! rename. A journal therefore never grows across restarts, only within
//! one server lifetime.
//!
//! ## Record grammar
//!
//! ```text
//! NEXT <id>                    id floor (written by compaction)
//! SUBMIT <id> <key=value ...>  job accepted; fields as in the wire SUBMIT
//! START <id>                   job left the queue and began running
//! DELIVERED <id> <seq>         a client consumed results up to seq (excl.)
//! END <id> <state>             job reached a terminal state
//! TENANT <principal> <bytes>   cumulative result bytes attributed to the
//!                              principal (by *name*, never token); written
//!                              at each of the tenant's job terminals with
//!                              the then-current total, so replay takes the
//!                              max — and the counters survive restarts and
//!                              compaction (unlike per-job records, totals
//!                              are not dropped when their jobs end)
//! ```
//!
//! Per-job `SUBMIT` records carry tenant attribution for free: the fields
//! are the wire `SUBMIT` line, which includes the `principal=` tag, so a
//! replayed job re-enters its owner's fair-share lane.

use crate::protocol::{self, JobId, Request, SubmitArgs};
use crate::sync::{OrderedMutex, Rank};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One non-terminal job reconstructed from a journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredJob {
    /// The id the job was originally accepted under (reused on replay).
    pub id: JobId,
    /// The original submission, exactly as validated then.
    pub args: SubmitArgs,
    /// True when the job had already started when the server died — an
    /// orphaned-running job, requeued like a queued one.
    pub was_started: bool,
    /// Journaled delivery high-water mark: a client already consumed
    /// results `[0, delivered)` in the previous lifetime. The replayed job
    /// streams only from this floor (see [`crate::job::Job::delivered_floor`]).
    pub delivered: u64,
}

/// Everything [`replay`] reconstructs from a journal's text.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Replay {
    /// Non-terminal jobs in id (= acceptance) order: these re-enter the
    /// queue on restart.
    pub jobs: Vec<RecoveredJob>,
    /// First id the restarted server may issue (past every id ever seen).
    pub next_id: JobId,
    /// Terminal jobs seen (they are *not* resurrected; counted for logs).
    pub terminal: usize,
    /// Cumulative result bytes per principal name, max over all `TENANT`
    /// records (they carry growing totals, so the max is the truth). Seeds
    /// the restarted server's per-tenant counters.
    pub tenant_bytes: BTreeMap<String, u64>,
}

/// One parsed journal line.
enum Record {
    /// Id floor written by compaction so ids survive a fully-drained log.
    Next(JobId),
    /// Job accepted with these submission arguments.
    Submit(JobId, SubmitArgs),
    /// Job began running.
    Start(JobId),
    /// A client consumed results up to this sequence number (exclusive).
    Delivered(JobId, u64),
    /// Job reached a terminal state.
    End(JobId),
    /// Cumulative result-byte total attributed to a principal name.
    Tenant(String, u64),
}

fn parse_record(line: &str) -> Result<Record, String> {
    let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
    let id =
        |s: &str| -> Result<JobId, String> { s.parse().map_err(|_| format!("bad job id {s:?}")) };
    match verb {
        "NEXT" => Ok(Record::Next(id(rest.trim())?)),
        "START" => Ok(Record::Start(id(rest.trim())?)),
        "END" => {
            let (id_str, _state) = rest
                .split_once(' ')
                .ok_or_else(|| format!("END without state: {line:?}"))?;
            Ok(Record::End(id(id_str)?))
        }
        "DELIVERED" => {
            let (id_str, seq) = rest
                .split_once(' ')
                .ok_or_else(|| format!("DELIVERED without seq: {line:?}"))?;
            let seq = seq
                .trim()
                .parse()
                .map_err(|_| format!("bad DELIVERED seq in {line:?}"))?;
            Ok(Record::Delivered(id(id_str)?, seq))
        }
        "TENANT" => {
            let (name, bytes) = rest
                .split_once(' ')
                .ok_or_else(|| format!("TENANT without bytes: {line:?}"))?;
            if name.is_empty() {
                return Err(format!("TENANT with empty principal: {line:?}"));
            }
            let bytes = bytes
                .trim()
                .parse()
                .map_err(|_| format!("bad TENANT bytes in {line:?}"))?;
            Ok(Record::Tenant(name.to_string(), bytes))
        }
        "SUBMIT" => {
            let (id_str, fields) = rest
                .split_once(' ')
                .ok_or_else(|| format!("SUBMIT without fields: {line:?}"))?;
            // The fields are exactly a wire `SUBMIT` line's arguments, so
            // the wire parser is the single source of validation.
            match protocol::parse_request(&format!("SUBMIT {fields}")) {
                Ok(Request::Submit(args)) => Ok(Record::Submit(id(id_str)?, *args)),
                Ok(_) => unreachable!("a SUBMIT line parses as Request::Submit"),
                Err(e) => Err(format!("bad SUBMIT record: {e}")),
            }
        }
        other => Err(format!("unknown journal record {other:?}")),
    }
}

/// Reconstructs the non-terminal job set from a journal's full text.
///
/// Pure and therefore **idempotent**: replaying the same text twice yields
/// the same [`Replay`]. Record order between ids does not matter (an `END`
/// may precede its `SUBMIT` in pathological interleavings); duplicate
/// records are harmless. A truncated final line — no trailing newline, the
/// signature of a torn append — is dropped unconditionally (even when its
/// prefix parses as a shorter valid record: it was never acknowledged);
/// a malformed complete record is corruption and errors.
pub fn replay(text: &str) -> Result<Replay, String> {
    let mut submits: BTreeMap<JobId, (SubmitArgs, bool)> = BTreeMap::new();
    let mut delivered: BTreeMap<JobId, u64> = BTreeMap::new();
    let mut tenant_bytes: BTreeMap<String, u64> = BTreeMap::new();
    let mut ended: BTreeSet<JobId> = BTreeSet::new();
    let mut max_id: JobId = 0;
    let mut floor: JobId = 1;
    let complete = text.is_empty() || text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if !complete && i + 1 == lines.len() {
            // Torn final append: dropped unconditionally, even when its
            // prefix happens to parse ("END 12 done" torn to "END 1 d"
            // must not terminate job 1). A record is only acknowledged
            // after its full line — newline included — is fsync'd, so a
            // tail without a newline was never relied upon by anyone.
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Ok(Record::Next(id)) => floor = floor.max(id),
            Ok(Record::Submit(id, args)) => {
                max_id = max_id.max(id);
                submits.entry(id).or_insert((args, false));
            }
            Ok(Record::Start(id)) => {
                max_id = max_id.max(id);
                if let Some(entry) = submits.get_mut(&id) {
                    entry.1 = true;
                }
            }
            Ok(Record::Delivered(id, seq)) => {
                // The high-water mark wins: records are monotone within one
                // stream but independent streams may land out of order.
                max_id = max_id.max(id);
                let floor = delivered.entry(id).or_insert(0);
                *floor = (*floor).max(seq);
            }
            Ok(Record::End(id)) => {
                max_id = max_id.max(id);
                ended.insert(id);
            }
            Ok(Record::Tenant(name, bytes)) => {
                // Totals only grow, so the max over all records — however
                // interleaved across concurrent terminals — is the truth.
                let total = tenant_bytes.entry(name).or_insert(0);
                *total = (*total).max(bytes);
            }
            Err(e) => return Err(format!("record {}: {e}", i + 1)),
        }
    }
    let terminal = submits.keys().filter(|id| ended.contains(id)).count();
    let jobs = submits
        .into_iter()
        .filter(|(id, _)| !ended.contains(id))
        .map(|(id, (args, was_started))| RecoveredJob {
            id,
            args,
            was_started,
            delivered: delivered.get(&id).copied().unwrap_or(0),
        })
        .collect();
    Ok(Replay {
        jobs,
        next_id: max_id.saturating_add(1).max(floor),
        terminal,
        tenant_bytes,
    })
}

/// The open, append-only journal of a running server.
///
/// Every record is written and fsync'd under one mutex, so records are
/// never interleaved and an acknowledged record is on disk. See the module
/// docs for the recovery semantics.
pub struct Journal {
    file: OrderedMutex<File>,
    /// Highest `DELIVERED` seq already on disk per job — the coalescing
    /// state: [`Journal::record_delivered`] drops any offset at or below
    /// it, so concurrent streams of one job (or a resumed stream re-walking
    /// old ground) never rewrite the floor.
    delivered: OrderedMutex<BTreeMap<JobId, u64>>,
    /// Highest `TENANT` total already on disk per principal — the same
    /// coalescing idea as `delivered`: [`Journal::record_tenant`] drops a
    /// total at or below the journaled one, so out-of-order terminal hooks
    /// never write a stale (smaller) counter. Shares
    /// [`Rank::JournalDelivered`] with `delivered`; the two are never held
    /// together.
    tenant: OrderedMutex<BTreeMap<String, u64>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").finish_non_exhaustive()
    }
}

impl Journal {
    /// Replays `path` (an absent file is an empty journal), **compacts** it
    /// — only live jobs and the id floor survive, via temp file + atomic
    /// rename — and reopens it for append. Returns the journal plus what
    /// was recovered. Corruption (a malformed non-tail record) fails with
    /// [`std::io::ErrorKind::InvalidData`] so the operator sees it at
    /// startup instead of silently losing jobs.
    pub fn open(path: &Path) -> std::io::Result<(Journal, Replay)> {
        let text = match std::fs::read(path) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let replay = replay(&text).map_err(|m| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("journal {}: {m}", path.display()),
            )
        })?;
        // Compact into a sibling temp file, then atomically swap it in. A
        // crash mid-compaction leaves the original journal untouched.
        let tmp: PathBuf = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".compact");
            PathBuf::from(os)
        };
        {
            let mut f = File::create(&tmp)?;
            writeln!(f, "NEXT {}", replay.next_id)?;
            // Tenant byte totals are cumulative across the journal's whole
            // history, so — unlike per-job records — they survive every
            // compaction (zero totals carry no information and are dropped).
            for (name, bytes) in &replay.tenant_bytes {
                if *bytes > 0 {
                    writeln!(f, "TENANT {name} {bytes}")?;
                }
            }
            for job in &replay.jobs {
                writeln!(f, "{}", submit_record(job.id, &job.args))?;
                if job.was_started {
                    writeln!(f, "START {}", job.id)?;
                }
                // Delivery floors survive compaction for live jobs only
                // (terminal jobs' floors die with their other records).
                if job.delivered > 0 {
                    writeln!(f, "DELIVERED {} {}", job.id, job.delivered)?;
                }
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        let delivered = replay
            .jobs
            .iter()
            .filter(|j| j.delivered > 0)
            .map(|j| (j.id, j.delivered))
            .collect();
        let tenant = replay
            .tenant_bytes
            .iter()
            .filter(|(_, &b)| b > 0)
            .map(|(n, &b)| (n.clone(), b))
            .collect();
        Ok((
            Journal {
                file: OrderedMutex::new(Rank::JournalFile, "journal-file", file),
                delivered: OrderedMutex::new(
                    Rank::JournalDelivered,
                    "journal-delivered",
                    delivered,
                ),
                tenant: OrderedMutex::new(Rank::JournalDelivered, "journal-tenant", tenant),
            },
            replay,
        ))
    }

    /// Appends one line and fsyncs it before returning.
    fn append(&self, line: &str) -> std::io::Result<()> {
        let mut file = self.file.lock();
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()
    }

    /// Records an accepted job. Called *before* the `SUBMIT` is
    /// acknowledged; an error here must fail the submission (the job would
    /// not survive a crash).
    pub fn record_submit(&self, id: JobId, args: &SubmitArgs) -> std::io::Result<()> {
        self.append(&submit_record(id, args))
    }

    /// Records that a job left the queue and began running.
    pub fn record_start(&self, id: JobId) -> std::io::Result<()> {
        self.append(&format!("START {id}"))
    }

    /// Records a terminal transition (`done` / `cancelled` / `failed`).
    /// Jobs with this record are never resurrected by replay.
    pub fn record_end(&self, id: JobId, state: &str) -> std::io::Result<()> {
        // The job can no longer be replayed; its floor is dead weight.
        self.delivered.lock().remove(&id);
        self.append(&format!("END {id} {state}"))
    }

    /// Records that a client has consumed results `[0, seq)` of a job —
    /// **coalesced**: an offset at or below the journaled high-water mark
    /// is dropped without touching the file, so the fsync cost is bounded
    /// by floor *advances*, not by calls. The streaming path only calls
    /// this at batch boundaries and idle flushes (never per result); see
    /// the module docs for the crash-window consequence.
    pub fn record_delivered(&self, id: JobId, seq: u64) -> std::io::Result<()> {
        {
            let mut delivered = self.delivered.lock();
            match delivered.get(&id) {
                Some(&floor) if seq <= floor => return Ok(()),
                _ => delivered.insert(id, seq),
            };
        }
        self.append(&format!("DELIVERED {id} {seq}"))
    }

    /// Records a principal's cumulative result-byte total — **coalesced**
    /// like [`Journal::record_delivered`]: a total at or below the
    /// journaled one is dropped, so concurrent terminal hooks racing to
    /// report (each with the counter value it observed) can never regress
    /// the on-disk total, and replay's max-wins rule sees only advances.
    /// Called from the job-terminal hook, which runs under the
    /// `JobProgress` lock — legal, because this only takes journal-ranked
    /// locks (see `crate::sync::Rank`).
    pub fn record_tenant(&self, name: &str, total: u64) -> std::io::Result<()> {
        {
            let mut tenant = self.tenant.lock();
            match tenant.get(name) {
                Some(&floor) if total <= floor => return Ok(()),
                _ => tenant.insert(name.to_string(), total),
            };
        }
        self.append(&format!("TENANT {name} {total}"))
    }
}

/// `SUBMIT <id> <fields>` — the fields are [`SubmitArgs::to_line`] minus
/// its leading verb, so the wire grammar is reused verbatim.
fn submit_record(id: JobId, args: &SubmitArgs) -> String {
    let line = args.to_line();
    let fields = line.strip_prefix("SUBMIT ").unwrap_or(&line);
    format!("SUBMIT {id} {fields}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(k: usize, q: usize) -> SubmitArgs {
        SubmitArgs::dataset("jazz", k, q)
    }

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kplex-journal-{}-{tag}.log", std::process::id()))
    }

    #[test]
    fn replay_reconstructs_non_terminal_jobs_only() {
        let text = "SUBMIT 1 dataset=jazz k=2 q=9\n\
                    SUBMIT 2 dataset=jazz k=2 q=7 throttle-us=50\n\
                    START 1\n\
                    END 1 done\n\
                    SUBMIT 3 dataset=jazz k=2 q=8\n\
                    START 3\n";
        let r = replay(text).unwrap();
        // Job 1 is terminal: not resurrected. Job 2 was queued, job 3 was
        // orphaned mid-run; both replay, in id order.
        assert_eq!(r.jobs.len(), 2);
        assert_eq!(
            (r.jobs[0].id, r.jobs[0].was_started, &r.jobs[0].args),
            (2, false, &{
                let mut a = args(2, 7);
                a.throttle_us = Some(50);
                a
            })
        );
        assert_eq!((r.jobs[1].id, r.jobs[1].was_started), (3, true));
        assert_eq!(r.next_id, 4);
        assert_eq!(r.terminal, 1);
    }

    #[test]
    fn replay_is_idempotent() {
        let text = "NEXT 5\nSUBMIT 7 dataset=jazz k=2 q=9\nSTART 7\nEND 8 failed\n";
        let once = replay(text).unwrap();
        let twice = replay(text).unwrap();
        assert_eq!(once, twice);
        assert_eq!(once.next_id, 9, "max id wins over the NEXT floor");
    }

    #[test]
    fn truncated_trailing_record_is_tolerated() {
        let text = "SUBMIT 1 dataset=jazz k=2 q=9\nSUBMIT 2 dataset=ja";
        let r = replay(text).unwrap();
        assert_eq!(r.jobs.len(), 1, "the torn tail record is dropped");
        assert_eq!(r.jobs[0].id, 1);
        // Even a torn line that happens to start like a valid verb.
        let r = replay("SUBMIT 1 dataset=jazz k=2 q=9\nEND 1").unwrap();
        assert_eq!(r.jobs.len(), 1, "torn END must not terminate job 1");
        // And even a torn line whose prefix parses as a complete, *wrong*
        // record: "END 12 done" torn to "END 1 d" names job 1.
        let r = replay("SUBMIT 1 dataset=jazz k=2 q=9\nEND 1 d").unwrap();
        assert_eq!(r.jobs.len(), 1, "parsable torn tail must still be dropped");
        assert_eq!(r.terminal, 0);
    }

    #[test]
    fn corruption_before_the_tail_errors() {
        let text = "SUBMIT 1 dataset=jazz k=2 q=9\nGARBAGE\nSTART 1\n";
        assert!(replay(text).unwrap_err().contains("record 2"));
        // A malformed *complete* final line is corruption too: a torn
        // append can never include the newline without the full record.
        assert!(replay("SUBMIT 1 dataset=jazz\n").is_err());
    }

    #[test]
    fn next_floor_survives_a_fully_drained_log() {
        let r = replay("NEXT 42\n").unwrap();
        assert!(r.jobs.is_empty());
        assert_eq!(r.next_id, 42, "ids must not be reused after a drain");
        assert_eq!(replay("").unwrap().next_id, 1);
    }

    #[test]
    fn open_compacts_and_resumes() {
        let path = tmp_path("compact");
        std::fs::remove_file(&path).ok();
        {
            let (journal, r) = Journal::open(&path).unwrap();
            assert!(r.jobs.is_empty());
            journal.record_submit(1, &args(2, 9)).unwrap();
            journal.record_start(1).unwrap();
            journal.record_end(1, "done").unwrap();
            journal.record_submit(2, &args(2, 7)).unwrap();
        }
        // Reopen: job 1 (terminal) is compacted away, job 2 replays.
        let (journal, r) = Journal::open(&path).unwrap();
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].id, 2);
        assert_eq!(r.next_id, 3);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            !text.contains("END 1"),
            "terminal records must be compacted away: {text:?}"
        );
        assert!(text.starts_with("NEXT 3\n"), "{text:?}");
        // The appended file keeps working after compaction.
        journal.record_end(2, "cancelled").unwrap();
        let (_, r) = Journal::open(&path).unwrap();
        assert!(r.jobs.is_empty(), "cancelled job resurrected: {r:?}");
        assert_eq!(r.next_id, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_takes_the_delivery_high_water_mark() {
        let text = "SUBMIT 1 dataset=jazz k=2 q=9\n\
                    DELIVERED 1 10\n\
                    DELIVERED 1 300\n\
                    DELIVERED 1 40\n\
                    SUBMIT 2 dataset=jazz k=2 q=8\n\
                    DELIVERED 2 7\n\
                    END 2 done\n";
        let r = replay(text).unwrap();
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(
            (r.jobs[0].id, r.jobs[0].delivered),
            (1, 300),
            "out-of-order DELIVERED records must resolve to the max"
        );
        // A floor without a SUBMIT is not corruption (the SUBMIT may have
        // been compacted in a pathological interleaving) — just unused.
        assert!(replay("DELIVERED 9 5\n").unwrap().jobs.is_empty());
        // Malformed DELIVERED records are corruption.
        assert!(replay("DELIVERED 1\n").is_err());
        assert!(replay("DELIVERED 1 x\n").is_err());
    }

    #[test]
    fn compaction_keeps_floors_of_live_jobs_only() {
        let path = tmp_path("delivered");
        std::fs::remove_file(&path).ok();
        {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.record_submit(1, &args(2, 9)).unwrap();
            journal.record_start(1).unwrap();
            journal.record_delivered(1, 120).unwrap();
            journal.record_submit(2, &args(2, 7)).unwrap();
            journal.record_delivered(2, 9).unwrap();
            journal.record_end(2, "done").unwrap();
        }
        let (journal, r) = Journal::open(&path).unwrap();
        assert_eq!(r.jobs.len(), 1);
        assert_eq!((r.jobs[0].id, r.jobs[0].delivered), (1, 120));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("DELIVERED 1 120"), "{text:?}");
        assert!(
            !text.contains("DELIVERED 2"),
            "terminal floor kept: {text:?}"
        );
        // Coalescing survives reopen: replaying the same floor (or lower)
        // must not append; only an advance does.
        journal.record_delivered(1, 120).unwrap();
        journal.record_delivered(1, 80).unwrap();
        journal.record_delivered(1, 121).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.matches("DELIVERED 1").count(),
            2,
            "one compacted floor plus one advance: {text:?}"
        );
        let (_, r) = Journal::open(&path).unwrap();
        assert_eq!(r.jobs[0].delivered, 121);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_takes_the_max_tenant_total() {
        let text = "TENANT alice 40\n\
                    SUBMIT 1 dataset=jazz k=2 q=9 principal=alice\n\
                    TENANT alice 12\n\
                    TENANT batch 8\n\
                    END 1 done\n";
        let r = replay(text).unwrap();
        assert_eq!(r.tenant_bytes.get("alice"), Some(&40), "max total wins");
        assert_eq!(r.tenant_bytes.get("batch"), Some(&8));
        assert_eq!(r.jobs.len(), 0);
        // The replayed SUBMIT keeps its principal tag.
        let r = replay("SUBMIT 1 dataset=jazz k=2 q=9 principal=alice\n").unwrap();
        assert_eq!(r.jobs[0].args.principal.as_deref(), Some("alice"));
        // Malformed TENANT records are corruption.
        assert!(replay("TENANT alice\n").is_err());
        assert!(replay("TENANT alice x\n").is_err());
        assert!(replay("TENANT  7\n").is_err(), "empty principal name");
    }

    #[test]
    fn tenant_totals_survive_compaction_and_coalesce() {
        let path = tmp_path("tenant");
        std::fs::remove_file(&path).ok();
        {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.record_submit(1, &args(2, 9)).unwrap();
            journal.record_tenant("alice", 16).unwrap();
            journal.record_tenant("alice", 48).unwrap();
            journal.record_end(1, "done").unwrap();
        }
        // Every job is terminal, yet the tenant totals outlive compaction.
        let (journal, r) = Journal::open(&path).unwrap();
        assert!(r.jobs.is_empty());
        assert_eq!(r.tenant_bytes.get("alice"), Some(&48));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("TENANT alice 48"), "{text:?}");
        assert_eq!(text.matches("TENANT alice").count(), 1, "{text:?}");
        // Coalescing is seeded from the compacted floor: stale or equal
        // totals must not append, only an advance does.
        journal.record_tenant("alice", 48).unwrap();
        journal.record_tenant("alice", 12).unwrap();
        journal.record_tenant("alice", 64).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.matches("TENANT alice").count(),
            2,
            "one compacted total plus one advance: {text:?}"
        );
        let (_, r) = Journal::open(&path).unwrap();
        assert_eq!(r.tenant_bytes.get("alice"), Some(&64));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_corruption() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, "SUBMIT 1 dataset=jazz k=2 q=9\nWAT\nSTART 1\n").unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
