//! Job lifecycle: specification, state machine, result buffer.
//!
//! A job moves `queued → running → done | cancelled | failed`. Results are
//! buffered (bounded by the job's result cap) under a mutex + condvar so any
//! number of `STREAM` readers can follow a running job from the beginning
//! and late subscribers replay everything. Cancellation is cooperative: the
//! shared [`Job::cancel`] flag is the same `Arc` the engine's workers and
//! sinks poll, so raising it stops the enumeration mid-task.

use crate::protocol::JobId;
use crate::sync::{OrderedCondvar, OrderedGuard, OrderedMutex, Rank};
use kplex_core::{AlgoConfig, Params, SearchStats};
use kplex_graph::VertexId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a job's graph comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphSource {
    /// A built-in stand-in dataset (`kplex_datasets`).
    Dataset(String),
    /// A server-local edge-list file.
    Path(String),
}

impl GraphSource {
    /// Cache key of the *loaded graph content* (preprocessing is keyed
    /// separately by the core shrink threshold).
    pub fn cache_key(&self) -> String {
        match self {
            // Versioned via the dataset registry so generator changes
            // invalidate cached graphs.
            GraphSource::Dataset(name) => kplex_datasets::by_name(name)
                .map(|d| d.cache_key())
                .unwrap_or_else(|| format!("dataset:{name}")),
            // File size + mtime in the key: editing the file between
            // submissions must not serve the stale cached graph. When the
            // metadata is unreadable the load will fail anyway.
            GraphSource::Path(p) => {
                let stamp = std::fs::metadata(p)
                    .map(|m| {
                        let mtime = m
                            .modified()
                            .ok()
                            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                            .map(|d| d.as_nanos())
                            .unwrap_or(0);
                        format!("{}:{mtime}", m.len())
                    })
                    .unwrap_or_else(|_| "unreadable".to_string());
                format!("path:{p}@{stamp}")
            }
        }
    }

    /// Display name for `STATUS`/`LIST` lines.
    pub fn label(&self) -> &str {
        match self {
            GraphSource::Dataset(name) => name,
            GraphSource::Path(p) => p,
        }
    }
}

/// A validated job configuration.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Input graph.
    pub source: GraphSource,
    /// (k, q), already validated.
    pub params: Params,
    /// Engine worker threads.
    pub threads: usize,
    /// Algorithm preset name (resolved per run via [`AlgoConfig::by_name`]).
    pub algo: String,
    /// Stop after this many buffered results.
    pub limit: u64,
    /// Wall-clock deadline for the running phase.
    pub timeout: Option<Duration>,
    /// Sleep per reported result (pacing knob; also makes cancellation
    /// deterministic to test).
    pub throttle: Duration,
    /// Straggler-splitting timeout τ_time for the engine.
    pub tau: Option<Duration>,
    /// Storage backend the prepared graph is held in.
    pub store: kplex_graph::StoreKind,
    /// Owning principal's name (`None` = anonymous). Set from the `SUBMIT`
    /// tag or the submitting connection's authenticated identity; drives
    /// quota accounting, fair-share lane assignment and `STATUS`/`STREAM`/
    /// `CANCEL` scoping.
    pub principal: Option<String>,
}

impl JobSpec {
    /// Resolves the algorithm preset.
    pub fn config(&self) -> Option<AlgoConfig> {
        AlgoConfig::by_name(&self.algo)
    }
}

/// Lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the bounded queue.
    Queued,
    /// Executing on a runner.
    Running,
    /// Finished normally (possibly truncated by the result cap).
    Done,
    /// Stopped by a client `CANCEL`.
    Cancelled,
    /// Aborted: load error, invalid config, or deadline exceeded.
    Failed,
}

impl JobState {
    /// Wire label (also used by `STATUS`).
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// True once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

/// Why the stop flag was raised (distinguishes the terminal state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StopCause {
    /// Client cancel — terminal state `cancelled`.
    Cancel,
    /// Result cap reached — still `done`.
    Cap,
    /// Deadline exceeded — terminal state `failed`.
    Deadline,
}

struct Progress {
    state: JobState,
    results: Vec<Vec<VertexId>>,
    /// Accounted byte cost of the buffered results (saturating — see
    /// [`crate::auth::plex_bytes`]); folded into the owning tenant's
    /// cumulative counter by the terminal hook.
    result_bytes: u64,
    stats: Option<SearchStats>,
    cache_hit: Option<bool>,
    error: Option<String>,
    stop_cause: Option<StopCause>,
    started: Option<Instant>,
    elapsed: Option<Duration>,
}

/// One submitted job. Shared between connection handlers (status, stream,
/// cancel), the runner executing it, and its drainer thread.
pub struct Job {
    /// Server-assigned id.
    pub id: JobId,
    /// The validated configuration.
    pub spec: JobSpec,
    /// Cooperative stop flag, plumbed into the engine and its sinks.
    pub cancel: Arc<AtomicBool>,
    /// True when this job was replayed from the journal after a restart
    /// rather than submitted on this server lifetime — surfaced in
    /// `STATUS` (`recovered=true`) because a replayed job re-runs work a
    /// previous lifetime already did (its result buffer died with the
    /// process; re-delivery below [`Job::delivered_floor`] is suppressed).
    pub recovered: bool,
    /// Journaled delivery high-water mark: every result with
    /// `seq < delivered_floor` was already consumed by a client in a
    /// previous server lifetime. Streams of this job start at
    /// `max(requested_from, delivered_floor)` so a replayed job never
    /// re-delivers a consumed prefix. Always 0 for fresh jobs.
    pub delivered_floor: u64,
    /// Invoked on the terminal transition (see [`TerminalHook`]).
    on_terminal: Option<TerminalHook>,
    inner: OrderedMutex<Progress>,
    cond: OrderedCondvar,
}

/// A point-in-time copy of a job's observable state (one `STATUS` line).
#[derive(Clone, Debug)]
pub struct JobSnapshot {
    /// Job id.
    pub id: JobId,
    /// Current state.
    pub state: JobState,
    /// Graph label.
    pub source: String,
    /// (k, q).
    pub params: Params,
    /// Results buffered so far.
    pub results: u64,
    /// True when the job was replayed from the journal (see
    /// [`Job::recovered`]).
    pub recovered: bool,
    /// Whether the prepared graph came from the cache (`None` until known).
    pub cache_hit: Option<bool>,
    /// Milliseconds spent running (live for running jobs, final otherwise).
    pub elapsed_ms: u64,
    /// Merged engine stats, once finished.
    pub stats: Option<SearchStats>,
    /// Failure reason, if failed.
    pub error: Option<String>,
}

/// Callback fired with `(id, terminal label, accounted result bytes)` at
/// the exact moment a job transitions to a terminal state — under the
/// job's lock, *before* the transition becomes observable to any
/// `STATUS`/`STREAM` reader. The server installs one to write the
/// journal's `END` record write-ahead (once a client has seen a job
/// terminal, a restart will not resurrect it) and to fold the job's result
/// bytes into its tenant's cumulative counter. Because it runs under the
/// job lock (rank `JobProgress`), a hook may only touch higher-ranked
/// locks (the journal's) or lock-free state (atomics).
pub type TerminalHook = Arc<dyn Fn(JobId, &str, u64) + Send + Sync>;

/// One step of a streaming read.
pub enum StreamStep {
    /// New results were appended to the caller's buffer.
    Items,
    /// The job is terminal and everything has been delivered.
    Ended(JobState, u64),
    /// The wait timed out with nothing new (caller re-checks shutdown).
    Idle,
}

impl Job {
    /// A freshly queued job.
    pub fn new(id: JobId, spec: JobSpec) -> Self {
        Self::with_provenance(id, spec, false)
    }

    /// A job replayed from the journal after a restart: queued like a new
    /// one, but flagged `recovered` for `STATUS`.
    pub fn new_recovered(id: JobId, spec: JobSpec) -> Self {
        Self::with_provenance(id, spec, true)
    }

    /// Installs the terminal-transition hook (builder style, before the
    /// job is shared). The hook fires exactly once per job.
    pub fn with_terminal_hook(mut self, hook: TerminalHook) -> Self {
        self.on_terminal = Some(hook);
        self
    }

    /// Sets the journaled delivery floor (builder style, for replayed
    /// jobs): streams skip every result below it. See
    /// [`Job::delivered_floor`].
    pub fn with_delivered_floor(mut self, floor: u64) -> Self {
        self.delivered_floor = floor;
        self
    }

    /// Fires the terminal hook. Must be called with the state lock held,
    /// right after the transition to `state` — before any observer can see
    /// it — and only from the single place that performed the transition.
    /// `bytes` is the job's accounted result-byte total, final by now: the
    /// drainer that feeds `append_result` is joined before `finish`, and
    /// the other terminal paths buffer nothing further.
    fn fire_terminal(&self, state: JobState, bytes: u64) {
        debug_assert!(state.is_terminal());
        if let Some(hook) = &self.on_terminal {
            hook(self.id, state.label(), bytes);
        }
    }

    fn with_provenance(id: JobId, spec: JobSpec, recovered: bool) -> Self {
        Self {
            id,
            spec,
            cancel: Arc::new(AtomicBool::new(false)),
            recovered,
            delivered_floor: 0,
            on_terminal: None,
            inner: OrderedMutex::new(
                Rank::JobProgress,
                "job-progress",
                Progress {
                    state: JobState::Queued,
                    results: Vec::new(),
                    result_bytes: 0,
                    stats: None,
                    cache_hit: None,
                    error: None,
                    stop_cause: None,
                    started: None,
                    elapsed: None,
                },
            ),
            cond: OrderedCondvar::new(),
        }
    }

    fn lock(&self) -> OrderedGuard<'_, Progress> {
        self.inner.lock()
    }

    /// Queued → Running. Returns false when the job was cancelled while
    /// queued (the runner skips it).
    pub fn mark_running(&self) -> bool {
        let mut p = self.lock();
        if p.state != JobState::Queued {
            return false;
        }
        p.state = JobState::Running;
        p.started = Some(Instant::now());
        true
    }

    /// Records whether the prepared graph was served from the cache.
    pub fn set_cache_hit(&self, hit: bool) {
        self.lock().cache_hit = Some(hit);
    }

    /// Current state alone — no string/stats clones. For hot scans (job
    /// eviction, shutdown) where a full [`Job::snapshot`] would allocate.
    pub fn state(&self) -> JobState {
        self.lock().state
    }

    /// Appends one streamed result unless the cap is reached; returns the
    /// buffered count. The caller raises the stop flag at the cap.
    pub fn append_result(&self, plex: Vec<VertexId>) -> u64 {
        let mut p = self.lock();
        if (p.results.len() as u64) < self.spec.limit {
            p.result_bytes =
                crate::auth::add_bytes(p.result_bytes, crate::auth::plex_bytes(plex.len()));
            p.results.push(plex);
            self.cond.notify_all();
        }
        p.results.len() as u64
    }

    /// Notes why the stop flag is being raised. The first cause wins: a cap
    /// racing a client cancel must not flip the terminal state.
    pub(crate) fn note_stop_cause(&self, cause: StopCause) {
        let mut p = self.lock();
        if p.stop_cause.is_none() {
            p.stop_cause = Some(cause);
        }
    }

    /// Client-facing cancel: raises the flag; a queued job dies immediately,
    /// a running one stops cooperatively.
    pub fn request_cancel(&self) {
        self.note_stop_cause(StopCause::Cancel);
        self.cancel.store(true, Ordering::Release);
        let mut p = self.lock();
        if p.state == JobState::Queued {
            p.state = JobState::Cancelled;
            p.elapsed = Some(Duration::ZERO);
            self.fire_terminal(p.state, p.result_bytes);
            self.cond.notify_all();
        }
    }

    /// Running → terminal, with the engine's merged stats.
    pub fn finish(&self, stats: SearchStats) {
        let mut p = self.lock();
        let (state, error) = match p.stop_cause {
            None | Some(StopCause::Cap) => (JobState::Done, None),
            Some(StopCause::Cancel) => (JobState::Cancelled, None),
            Some(StopCause::Deadline) => (JobState::Failed, Some("deadline exceeded".to_string())),
        };
        p.state = state;
        p.error = error;
        p.stats = Some(stats);
        p.elapsed = p.started.map(|s| s.elapsed());
        self.fire_terminal(state, p.result_bytes);
        self.cond.notify_all();
    }

    /// Any non-terminal state → Failed with a reason (load error, bad
    /// preset, …). A no-op on an already-terminal job (the first terminal
    /// transition wins, and the terminal hook fires exactly once).
    pub fn fail(&self, reason: String) {
        let mut p = self.lock();
        if p.state.is_terminal() {
            return;
        }
        p.state = JobState::Failed;
        p.error = Some(reason);
        p.elapsed = p.started.map(|s| s.elapsed());
        self.fire_terminal(p.state, p.result_bytes);
        self.cond.notify_all();
    }

    /// Observable state for `STATUS` / `LIST`.
    pub fn snapshot(&self) -> JobSnapshot {
        let p = self.lock();
        let elapsed = p
            .elapsed
            .or_else(|| p.started.map(|s| s.elapsed()))
            .unwrap_or(Duration::ZERO);
        JobSnapshot {
            id: self.id,
            state: p.state,
            source: self.spec.source.label().to_string(),
            params: self.spec.params,
            results: p.results.len() as u64,
            recovered: self.recovered,
            cache_hit: p.cache_hit,
            elapsed_ms: elapsed.as_millis() as u64,
            stats: p.stats.clone(),
            error: p.error.clone(),
        }
    }

    /// Copies results `[from, from + CHUNK)` into `buf`, waiting up to
    /// `wait` for something to happen first. Drives the `STREAM` loop. The
    /// copy is chunked so a late subscriber catching up on a large backlog
    /// holds the job lock for O(chunk), never O(backlog) — the drainer's
    /// `append_result` and `STATUS` snapshots stay responsive.
    pub fn next_results(
        &self,
        from: usize,
        buf: &mut Vec<Vec<VertexId>>,
        wait: Duration,
    ) -> StreamStep {
        /// Results copied out per lock acquisition.
        const CHUNK: usize = 1024;
        let copy = |p: &Progress, buf: &mut Vec<Vec<VertexId>>| {
            let to = p.results.len().min(from + CHUNK);
            buf.extend_from_slice(&p.results[from..to]);
        };
        let mut p = self.lock();
        if p.results.len() > from {
            copy(&p, buf);
            return StreamStep::Items;
        }
        if p.state.is_terminal() {
            return StreamStep::Ended(p.state, p.results.len() as u64);
        }
        let (p2, _timed_out) = self.cond.wait_timeout(p, wait);
        p = p2;
        if p.results.len() > from {
            copy(&p, buf);
            StreamStep::Items
        } else if p.state.is_terminal() {
            StreamStep::Ended(p.state, p.results.len() as u64)
        } else {
            StreamStep::Idle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            source: GraphSource::Dataset("jazz".into()),
            params: Params::new(2, 9).unwrap(),
            threads: 1,
            algo: "ours".into(),
            limit: 2,
            timeout: None,
            throttle: Duration::ZERO,
            tau: None,
            store: kplex_graph::StoreKind::Csr,
            principal: None,
        }
    }

    #[test]
    fn lifecycle_and_result_cap() {
        let job = Job::new(1, spec());
        assert_eq!(job.snapshot().state, JobState::Queued);
        assert!(job.mark_running());
        assert_eq!(job.append_result(vec![1, 2]), 1);
        assert_eq!(job.append_result(vec![3, 4]), 2);
        // Beyond the cap nothing is buffered.
        assert_eq!(job.append_result(vec![5, 6]), 2);
        job.note_stop_cause(StopCause::Cap);
        job.finish(SearchStats::default());
        let snap = job.snapshot();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(snap.results, 2);
    }

    #[test]
    fn queued_cancel_is_immediate_and_cause_is_sticky() {
        let job = Job::new(2, spec());
        job.request_cancel();
        assert_eq!(job.snapshot().state, JobState::Cancelled);
        assert!(job.cancel.load(Ordering::Acquire));
        assert!(!job.mark_running(), "cancelled jobs must not run");
        // A later cap cannot overwrite the cancel cause.
        job.note_stop_cause(StopCause::Cap);
        let p = job.lock();
        assert_eq!(p.stop_cause, Some(StopCause::Cancel));
    }

    #[test]
    fn terminal_hook_reports_accounted_bytes() {
        use std::sync::atomic::AtomicU64;
        let seen = Arc::new(AtomicU64::new(0));
        let hook_seen = seen.clone();
        let job = Job::new(4, spec()).with_terminal_hook(Arc::new(move |_, _, bytes| {
            // ordering: test observation, read after finish() returns.
            hook_seen.store(bytes, Ordering::SeqCst);
        }));
        job.mark_running();
        job.append_result(vec![1, 2, 3]); // 12 accounted bytes
        job.append_result(vec![4]); // 4 accounted bytes
        job.finish(SearchStats::default());
        // ordering: test observation, written before finish() returned.
        assert_eq!(seen.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn recovered_jobs_are_flagged() {
        let job = Job::new_recovered(9, spec());
        assert!(job.recovered);
        assert!(job.snapshot().recovered);
        assert!(!Job::new(1, spec()).snapshot().recovered);
    }

    #[test]
    fn streaming_replays_and_ends() {
        let job = Job::new(3, spec());
        job.mark_running();
        job.append_result(vec![1]);
        job.append_result(vec![2]);
        let mut buf = Vec::new();
        assert!(matches!(
            job.next_results(0, &mut buf, Duration::from_millis(1)),
            StreamStep::Items
        ));
        assert_eq!(buf.len(), 2);
        assert!(matches!(
            job.next_results(2, &mut buf, Duration::from_millis(1)),
            StreamStep::Idle
        ));
        job.finish(SearchStats::default());
        match job.next_results(2, &mut buf, Duration::from_millis(1)) {
            StreamStep::Ended(state, total) => {
                assert_eq!(state, JobState::Done);
                assert_eq!(total, 2);
            }
            _ => panic!("expected end of stream"),
        }
    }
}
