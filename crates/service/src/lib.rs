//! # kplex-service
//!
//! A multi-client enumeration server (`kplexd`) over the k-plex engine:
//! clients submit jobs over TCP, the server queues them onto a runner pool,
//! streams results back as NDJSON lines, and supports cooperative
//! cancellation, per-job result caps and deadlines, and an LRU cache of
//! prepared (loaded + core-reduced) graphs so repeat jobs on the same graph
//! skip the load/reduce phase.
//!
//! The paper's result sets can exceed 10^9 plexes, so nothing here
//! materialises results beyond the per-job cap: enumeration feeds a channel
//! [`kplex_core::ChannelSink`] and the buffer is bounded.
//!
//! Wire protocol reference: `crates/service/PROTOCOL.md`. Line-delimited
//! requests (`SUBMIT`, `STATUS`, `STREAM`, `CANCEL`, `LIST`, `STATS`,
//! `PING`, `QUIT`), single-line `OK`/`ERR` responses, multi-line responses
//! terminated by `END`.
//!
//! Scale-out: [`router::Router`] (the `kplexr` binary) fronts N `kplexd`
//! backends behind the same wire protocol, rendezvous-hashing submissions
//! by (graph cache key, `q − k`) so each graph's prepared cache stays hot
//! on its owning backend, and failing queued jobs over when a backend dies.
//! The cluster is self-healing: the router's background prober
//! ([`router::ProbeConfig`]) marks backends dead/alive proactively with
//! flap suppression, topology changes actively rebalance queued jobs back
//! onto their rendezvous owners, and a `kplexd` started with a
//! [`journal`] replays queued and orphaned-running jobs after a restart.
//!
//! The crate map and the end-to-end dataflow (client → `kplexr` → `kplexd`
//! → engine) are described in `ARCHITECTURE.md` at the repository root;
//! operational guidance (deployment, crash recovery, the at-least-once
//! caveat) lives in the README's "Operations runbook".
//!
//! ```
//! use kplex_service::protocol::{parse_request, Request, SubmitArgs};
//!
//! let line = SubmitArgs::dataset("jazz", 2, 9).to_line();
//! assert!(matches!(parse_request(&line), Ok(Request::Submit(_))));
//! ```

#![deny(missing_docs)]

pub mod auth;
pub mod cache;
pub mod client;
pub mod job;
pub mod journal;
pub mod protocol;
pub mod router;
pub mod server;
pub mod sync;

pub use auth::{Principal, PrincipalStore};
pub use cache::{CacheStats, Fetched, GraphCache};
pub use client::{Client, ClientError};
pub use job::{GraphSource, Job, JobSnapshot, JobSpec, JobState};
pub use journal::{Journal, RecoveredJob, Replay};
pub use protocol::{JobId, Request, SubmitArgs};
pub use router::{ProbeConfig, Router, RouterConfig, RouterHandle};
pub use server::{Server, ServerConfig, ServerHandle};
pub use sync::{OrderedCondvar, OrderedGuard, OrderedMutex, Rank};

/// A shared callback invoked with the cache key at the start of every cold
/// graph load (see [`ServerConfig::cold_load_hook`]). Wrapped in a newtype
/// so `ServerConfig` stays `Clone` and the hook stays nameable in tests.
#[derive(Clone)]
pub struct LoadHook(pub std::sync::Arc<dyn Fn(&str) + Send + Sync>);

impl LoadHook {
    /// Wraps a closure as a load hook.
    pub fn new(f: impl Fn(&str) + Send + Sync + 'static) -> Self {
        LoadHook(std::sync::Arc::new(f))
    }
}
