//! LRU cache of prepared graphs.
//!
//! Loading a graph and running the (q−k)-core reduction + degeneracy
//! ordering ([`kplex_core::prepare`]) dominates short jobs, and interactive
//! clients tend to re-query the same graph with varying (k, q). The cache
//! keys on (graph content, shrink threshold `q − k`) — the only inputs
//! `prepare` depends on — so a warm resubmission skips the whole load/reduce
//! phase and goes straight to enumeration.

use kplex_core::Prepared;
use std::sync::{Arc, Mutex};

struct Entry {
    graph_key: String,
    shrink: usize,
    prep: Arc<Prepared>,
}

struct Inner {
    /// LRU order: most recently used at the back.
    entries: Vec<Entry>,
    hits: u64,
    misses: u64,
}

/// Point-in-time cache counters (`STATS`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// A small LRU of `Arc<Prepared>` keyed by (graph key, `q − k`).
pub struct GraphCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl GraphCache {
    /// A cache holding at most `capacity` prepared graphs (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                hits: 0,
                misses: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached `Prepared` for `(graph_key, shrink)` or builds it
    /// with `build`. The boolean is true on a hit. The lock is held across
    /// `build`, trading load parallelism for single-flight semantics (two
    /// jobs racing on a cold graph load it once, not twice).
    pub fn get_or_insert(
        &self,
        graph_key: &str,
        shrink: usize,
        build: impl FnOnce() -> Result<Prepared, String>,
    ) -> Result<(Arc<Prepared>, bool), String> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if let Some(pos) = inner
            .entries
            .iter()
            .position(|e| e.graph_key == graph_key && e.shrink == shrink)
        {
            inner.hits += 1;
            let entry = inner.entries.remove(pos);
            let prep = entry.prep.clone();
            inner.entries.push(entry); // back = most recent
            return Ok((prep, true));
        }
        inner.misses += 1;
        let prep = Arc::new(build()?);
        if inner.entries.len() >= self.capacity {
            inner.entries.remove(0); // front = least recent
        }
        inner.entries.push(Entry {
            graph_key: graph_key.to_string(),
            shrink,
            prep: prep.clone(),
        });
        Ok((prep, false))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplex_core::{prepare, Params};
    use kplex_graph::gen;

    fn build(seed: u64) -> Result<Prepared, String> {
        Ok(prepare(
            &gen::gnp(30, 0.3, seed),
            Params::new(2, 4).unwrap(),
        ))
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let cache = GraphCache::new(2);
        let (a1, hit) = cache.get_or_insert("a", 2, || build(1)).unwrap();
        assert!(!hit);
        let (a2, hit) = cache.get_or_insert("a", 2, || panic!("must hit")).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&a1, &a2));
        // Same graph, different shrink: a distinct entry.
        let (_, hit) = cache.get_or_insert("a", 3, || build(1)).unwrap();
        assert!(!hit);
        // A hit refreshes ("a", 2), so the third distinct key evicts the
        // now-least-recent ("a", 3).
        let (_, hit) = cache.get_or_insert("a", 2, || panic!("must hit")).unwrap();
        assert!(hit);
        let (_, _) = cache.get_or_insert("b", 2, || build(2)).unwrap();
        let (_, hit) = cache.get_or_insert("a", 3, || build(1)).unwrap();
        assert!(!hit, "(a, 3) should have been evicted");
        let (_, hit) = cache.get_or_insert("b", 2, || panic!("must hit")).unwrap();
        assert!(hit, "(b, 2) must have survived");
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().hits, 3);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = GraphCache::new(1);
        assert!(cache
            .get_or_insert("x", 2, || Err("boom".to_string()))
            .is_err());
        let (_, hit) = cache.get_or_insert("x", 2, || build(3)).unwrap();
        assert!(!hit, "a failed build must not leave an entry");
    }
}
