//! LRU cache of prepared graphs with per-entry single-flight loading.
//!
//! Loading a graph and running the (q−k)-core reduction + degeneracy
//! ordering ([`kplex_core::prepare`]) dominates short jobs, and interactive
//! clients tend to re-query the same graph with varying (k, q). The cache
//! keys on (graph content, shrink threshold `q − k`) — the only inputs
//! `prepare` depends on — so a warm resubmission skips the whole load/reduce
//! phase and goes straight to enumeration.
//!
//! Concurrency contract: the map lock is only ever held for map surgery,
//! never across a build. A cold load inserts a pending marker,
//! releases the lock, and builds outside it; concurrent requesters for the
//! *same* key block on the cache condvar until the flight lands (exactly one
//! build per key — single-flight), while requests for *other* keys, warm
//! hits, and [`GraphCache::stats`] all proceed undisturbed. A failed build
//! removes the marker and wakes the waiters, which then race to become the
//! next builder (a transient failure must not poison the key).

use crate::sync::{OrderedCondvar, OrderedMutex, Rank};
use kplex_core::Prepared;
use std::sync::Arc;

/// How a lookup was served, for per-job reporting and counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fetched {
    /// Served from an existing entry without waiting.
    Hit,
    /// Waited for another requester's in-flight build of the same key.
    Coalesced,
    /// This requester ran the build itself.
    Miss,
}

impl Fetched {
    /// True when the caller did not pay for the load/prepare phase itself.
    /// (A coalesced request waited, but did no CPU work and no I/O.)
    pub fn is_warm(self) -> bool {
        !matches!(self, Fetched::Miss)
    }
}

enum Slot {
    /// A build for this key is in flight on some other thread.
    Pending,
    /// The prepared graph, ready to share.
    Ready(Arc<Prepared>),
}

struct Entry {
    graph_key: String,
    shrink: usize,
    slot: Slot,
}

impl Entry {
    fn is_ready(&self) -> bool {
        matches!(self.slot, Slot::Ready(_))
    }
}

struct Inner {
    /// LRU order among `Ready` entries: most recently used at the back.
    /// `Pending` entries are pinned (never evicted) until their flight lands.
    entries: Vec<Entry>,
    hits: u64,
    coalesced: u64,
    misses: u64,
    /// Requesters currently blocked on someone else's in-flight build.
    waiting: usize,
}

impl Inner {
    fn position(&self, graph_key: &str, shrink: usize) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.graph_key == graph_key && e.shrink == shrink)
    }
}

/// Point-in-time cache counters (`STATS`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a ready entry without waiting.
    pub hits: u64,
    /// Lookups that waited on another requester's in-flight build.
    pub coalesced: u64,
    /// Lookups that ran a build.
    pub misses: u64,
    /// Ready entries currently held.
    pub entries: usize,
    /// Builds currently in flight.
    pub pending: usize,
    /// Requesters currently blocked waiting on an in-flight build (a
    /// liveness gauge: everything else proceeds during a cold load).
    pub waiting: usize,
}

/// A small LRU of `Arc<Prepared>` keyed by (graph key, `q − k`), with
/// per-entry single-flight cold loads (see the module docs).
pub struct GraphCache {
    inner: OrderedMutex<Inner>,
    /// Signalled whenever a flight lands (successfully or not).
    landed: OrderedCondvar,
    capacity: usize,
}

impl GraphCache {
    /// A cache holding at most `capacity` prepared graphs (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: OrderedMutex::new(
                Rank::CacheInner,
                "cache-inner",
                Inner {
                    entries: Vec::new(),
                    hits: 0,
                    coalesced: 0,
                    misses: 0,
                    waiting: 0,
                },
            ),
            landed: OrderedCondvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Returns the cached `Prepared` for `(graph_key, shrink)` or builds it
    /// with `build`, running at most one build per key at a time and never
    /// holding the map lock across `build`. Concurrent requesters of the
    /// same cold key block until the first one's build lands; everyone else
    /// proceeds.
    pub fn get_or_build(
        &self,
        graph_key: &str,
        shrink: usize,
        build: impl FnOnce() -> Result<Prepared, String>,
    ) -> Result<(Arc<Prepared>, Fetched), String> {
        let mut waited = false;
        let mut inner = self.inner.lock();
        loop {
            match inner.position(graph_key, shrink) {
                Some(pos) if inner.entries[pos].is_ready() => {
                    let entry = inner.entries.remove(pos);
                    let Slot::Ready(prep) = &entry.slot else {
                        unreachable!()
                    };
                    let prep = prep.clone();
                    inner.entries.push(entry); // back = most recent
                    let how = if waited {
                        inner.coalesced += 1;
                        Fetched::Coalesced
                    } else {
                        inner.hits += 1;
                        Fetched::Hit
                    };
                    return Ok((prep, how));
                }
                Some(_) => {
                    // Another thread's build is in flight: wait for it to
                    // land, then re-check (it may have failed and vanished,
                    // in which case the loop falls through to build below).
                    waited = true;
                    inner.waiting += 1;
                    inner = self.landed.wait(inner);
                    inner.waiting -= 1;
                }
                None => break,
            }
        }
        // Cold: become the builder. Insert the Pending marker, then build
        // with the lock RELEASED so unrelated lookups and stats proceed.
        inner.misses += 1;
        inner.entries.push(Entry {
            graph_key: graph_key.to_string(),
            shrink,
            slot: Slot::Pending,
        });
        drop(inner);

        // If `build` panics, the guard removes the Pending marker and wakes
        // the waiters on unwind — otherwise they would block forever on a
        // flight that can never land.
        let guard = FlightGuard {
            cache: self,
            graph_key,
            shrink,
        };
        let built = build();
        std::mem::forget(guard);

        let mut inner = self.inner.lock();
        let pos = inner
            .position(graph_key, shrink)
            .expect("pending entry removed by someone else");
        match built {
            Ok(prep) => {
                let prep = Arc::new(prep);
                // Land the flight at the LRU back (most recent).
                let mut entry = inner.entries.remove(pos);
                entry.slot = Slot::Ready(prep.clone());
                inner.entries.push(entry);
                // Evict least-recent READY entries beyond capacity; pending
                // flights are pinned and do not count against it.
                while inner.entries.iter().filter(|e| e.is_ready()).count() > self.capacity {
                    let lru = inner
                        .entries
                        .iter()
                        .position(Entry::is_ready)
                        .expect("counted above");
                    inner.entries.remove(lru);
                }
                self.landed.notify_all();
                Ok((prep, Fetched::Miss))
            }
            Err(e) => {
                // A failed build must not poison the key: remove the marker
                // and let any waiter retry as the next builder.
                inner.entries.remove(pos);
                self.landed.notify_all();
                Err(e)
            }
        }
    }

    /// Removes a still-Pending marker (used by [`FlightGuard`] when a build
    /// panics instead of returning).
    fn abort_flight(&self, graph_key: &str, shrink: usize) {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.position(graph_key, shrink) {
            if !inner.entries[pos].is_ready() {
                inner.entries.remove(pos);
            }
        }
        self.landed.notify_all();
    }

    /// Aggregates the resident ready entries by storage backend:
    /// `(backend label, entries, resident bytes)`, one tuple per backend
    /// present, in label order. Feeds the `store=` and `graph-bytes=`
    /// fields of `STATS`. Never blocks on in-flight builds.
    pub fn store_stats(&self) -> Vec<(&'static str, usize, u64)> {
        use kplex_graph::GraphStore;
        let inner = self.inner.lock();
        let mut agg: Vec<(&'static str, usize, u64)> = Vec::new();
        for e in &inner.entries {
            let Slot::Ready(prep) = &e.slot else {
                continue;
            };
            let label = prep.graph.kind().label();
            let bytes = prep.graph.resident_bytes() as u64;
            match agg.iter_mut().find(|(l, _, _)| *l == label) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total += bytes;
                }
                None => agg.push((label, 1, bytes)),
            }
        }
        agg.sort_by_key(|&(l, _, _)| l);
        agg
    }

    /// Current counters. Never blocks on in-flight builds.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            coalesced: inner.coalesced,
            misses: inner.misses,
            entries: inner.entries.iter().filter(|e| e.is_ready()).count(),
            pending: inner.entries.iter().filter(|e| !e.is_ready()).count(),
            waiting: inner.waiting,
        }
    }
}

/// Unwind insurance for an in-flight build: dropped (only during a panic —
/// the happy paths `forget` it) it removes the Pending marker and wakes
/// waiters, so one panicking load cannot wedge every later request for its
/// key.
struct FlightGuard<'a> {
    cache: &'a GraphCache,
    graph_key: &'a str,
    shrink: usize,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.cache.abort_flight(self.graph_key, self.shrink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplex_core::{prepare, Params};
    use kplex_graph::gen;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn build(seed: u64) -> Result<Prepared, String> {
        Ok(prepare(
            &gen::gnp(30, 0.3, seed),
            Params::new(2, 4).unwrap(),
        ))
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let cache = GraphCache::new(2);
        let (a1, how) = cache.get_or_build("a", 2, || build(1)).unwrap();
        assert_eq!(how, Fetched::Miss);
        let (a2, how) = cache.get_or_build("a", 2, || panic!("must hit")).unwrap();
        assert_eq!(how, Fetched::Hit);
        assert!(Arc::ptr_eq(&a1, &a2));
        // Same graph, different shrink: a distinct entry.
        let (_, how) = cache.get_or_build("a", 3, || build(1)).unwrap();
        assert_eq!(how, Fetched::Miss);
        // A hit refreshes ("a", 2), so the third distinct key evicts the
        // now-least-recent ("a", 3).
        let (_, how) = cache.get_or_build("a", 2, || panic!("must hit")).unwrap();
        assert_eq!(how, Fetched::Hit);
        let (_, _) = cache.get_or_build("b", 2, || build(2)).unwrap();
        let (_, how) = cache.get_or_build("a", 3, || build(1)).unwrap();
        assert_eq!(how, Fetched::Miss, "(a, 3) should have been evicted");
        let (_, how) = cache.get_or_build("b", 2, || panic!("must hit")).unwrap();
        assert_eq!(how, Fetched::Hit, "(b, 2) must have survived");
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.pending, 0);
    }

    #[test]
    fn store_stats_aggregate_ready_entries() {
        let cache = GraphCache::new(4);
        assert!(cache.store_stats().is_empty());
        cache.get_or_build("a", 2, || build(1)).unwrap();
        cache.get_or_build("b", 2, || build(2)).unwrap();
        let agg = cache.store_stats();
        assert_eq!(agg.len(), 1, "both entries are CSR-resident");
        let (label, count, bytes) = agg[0];
        assert_eq!(label, "csr");
        assert_eq!(count, 2);
        assert!(bytes > 0, "CSR entries report their resident size");
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = GraphCache::new(1);
        assert!(cache
            .get_or_build("x", 2, || Err("boom".to_string()))
            .is_err());
        let (_, how) = cache.get_or_build("x", 2, || build(3)).unwrap();
        assert_eq!(how, Fetched::Miss, "a failed build must not leave an entry");
    }

    /// Two concurrent cold requests for one key run exactly one build; the
    /// second requester blocks and is served the first one's result.
    #[test]
    fn single_flight_dedups_concurrent_cold_loads() {
        let cache = Arc::new(GraphCache::new(2));
        let builds = Arc::new(AtomicUsize::new(0));
        // The first builder signals `started` and then blocks on `release`,
        // holding its flight open deterministically (no sleeps).
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();

        let leader = {
            let (cache, builds) = (cache.clone(), builds.clone());
            std::thread::spawn(move || {
                cache
                    .get_or_build("slow", 2, move || {
                        // ordering: test counter read after join; SeqCst for simplicity.
                        builds.fetch_add(1, Ordering::SeqCst);
                        started_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                        build(1)
                    })
                    .unwrap()
            })
        };
        started_rx.recv().expect("leader build started");

        // The flight is now open. A second requester for the same key must
        // coalesce onto it (its own build closure must never run).
        let waiter = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                cache
                    .get_or_build("slow", 2, || panic!("waiter must not build"))
                    .unwrap()
            })
        };
        // Deterministic rendezvous: wait until the waiter is observably
        // blocked on the flight before poking at the cache further.
        while cache.stats().waiting != 1 {
            std::thread::yield_now();
        }

        // While the cold load is in flight, unrelated requests and stats
        // proceed: this is the per-entry (not global) single-flight claim.
        let (_, how) = cache.get_or_build("other", 2, || build(2)).unwrap();
        assert_eq!(how, Fetched::Miss);
        let stats = cache.stats();
        assert_eq!(stats.pending, 1, "the slow flight is still open");
        assert_eq!(stats.entries, 1, "the unrelated entry landed");
        assert_eq!(stats.waiting, 1, "the twin requester is parked");

        release_tx.send(()).unwrap();
        let (leader_prep, leader_how) = leader.join().expect("leader thread");
        let (waiter_prep, waiter_how) = waiter.join().expect("waiter thread");
        assert_eq!(leader_how, Fetched::Miss);
        assert_eq!(waiter_how, Fetched::Coalesced);
        assert!(Arc::ptr_eq(&leader_prep, &waiter_prep));
        // ordering: read after both joins; SeqCst for simplicity in test code.
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one build ran");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.coalesced), (2, 1));
        assert_eq!(stats.pending, 0);
    }

    /// A build that panics (rather than erroring) must not wedge the key:
    /// the unwind guard removes the Pending marker so the next requester
    /// becomes a fresh builder.
    #[test]
    fn panicking_build_does_not_wedge_the_key() {
        let cache = Arc::new(GraphCache::new(2));
        let panicker = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let _ = cache.get_or_build("k", 2, || panic!("load exploded"));
            })
        };
        assert!(panicker.join().is_err(), "the build must have panicked");
        assert_eq!(cache.stats().pending, 0, "the dead flight was cleaned up");
        let (_, how) = cache.get_or_build("k", 2, || build(9)).unwrap();
        assert_eq!(how, Fetched::Miss, "the key must be buildable again");
    }

    /// A failed flight wakes its waiters, and one of them becomes the next
    /// builder instead of inheriting the error.
    #[test]
    fn waiter_retries_after_failed_flight() {
        let cache = Arc::new(GraphCache::new(2));
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();

        let failing = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                cache.get_or_build("k", 2, move || {
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    Err("disk on fire".to_string())
                })
            })
        };
        started_rx.recv().expect("failing build started");
        let retried = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let (cache, retried) = (cache.clone(), retried.clone());
            std::thread::spawn(move || {
                cache
                    .get_or_build("k", 2, move || {
                        // ordering: test counter read after join; SeqCst for simplicity.
                        retried.fetch_add(1, Ordering::SeqCst);
                        build(5)
                    })
                    .unwrap()
            })
        };
        // Ensure the waiter is parked on the doomed flight, then fail it.
        while cache.stats().waiting != 1 {
            std::thread::yield_now();
        }
        release_tx.send(()).unwrap();
        assert!(failing.join().expect("failing thread").is_err());
        let (_, how) = waiter.join().expect("waiter thread");
        assert_eq!(how, Fetched::Miss, "the waiter became the next builder");
        // ordering: read after join; SeqCst for simplicity in test code.
        assert_eq!(retried.load(Ordering::SeqCst), 1);
    }
}
