//! A small blocking client for the `kplexd` wire protocol.
//!
//! Used by `kplex submit`, the `kplexd smoke` self-test and the integration
//! tests. One connection handles one request at a time (the protocol is
//! strictly request → response); cancelling a job that is being streamed on
//! this connection therefore needs a second connection.

use crate::protocol::{self, JobId, SubmitArgs};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered `ERR …`.
    Remote(String),
    /// The server answered something the client cannot parse.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Remote(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running `kplexd`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream, None)
    }

    /// Connects with a bounded connect timeout and, optionally, a read
    /// timeout on every reply. The router uses this for backend calls so a
    /// wedged (not crashed) backend cannot stall proxied requests forever:
    /// a timeout surfaces as an I/O error, which the caller treats as a
    /// transport failure. Leave `read` as `None` for `STREAM` — a live
    /// stream is legitimately silent while the job computes.
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        connect: std::time::Duration,
        read: Option<std::time::Duration>,
    ) -> Result<Client, ClientError> {
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".into()))?;
        let stream = TcpStream::connect_timeout(&sockaddr, connect)?;
        Client::from_stream(stream, read)
    }

    fn from_stream(
        stream: TcpStream,
        read: Option<std::time::Duration>,
    ) -> Result<Client, ClientError> {
        stream.set_nodelay(true).ok();
        if read.is_some() {
            stream.set_read_timeout(read)?;
        }
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        Ok(line.trim_end().to_string())
    }

    /// One simple request: sends `line`, expects a single `OK …` line and
    /// returns its fields.
    fn request(&mut self, line: &str) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(line)?;
        let resp = self.read_line()?;
        if let Some(msg) = resp.strip_prefix("ERR ") {
            return Err(ClientError::Remote(msg.to_string()));
        }
        if !resp.starts_with("OK") {
            return Err(ClientError::Protocol(format!("unexpected reply {resp:?}")));
        }
        protocol::parse_response_fields(&resp).map_err(ClientError::Protocol)
    }

    /// Authenticates this connection as the principal owning `token`
    /// (`AUTH <token>`). Returns the reply fields (`principal=`, `weight=`,
    /// `admin=`) — the server never echoes the token itself. Required
    /// before any other verb on a server started with `--principals`.
    pub fn auth(&mut self, token: &str) -> Result<BTreeMap<String, String>, ClientError> {
        if token.is_empty() || token.chars().any(char::is_whitespace) {
            // A whitespace-bearing token would be framed as extra wire
            // tokens; reject it client-side without putting it on the wire.
            return Err(ClientError::Protocol(
                "token is empty or contains whitespace".into(),
            ));
        }
        self.request(&protocol::render_request(&protocol::Request::Auth(
            token.to_string(),
        )))
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("PING")?;
        match self.read_line()?.as_str() {
            "OK pong" => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Submits a job, returning the full `OK` reply fields. Against a
    /// `kplexr` router the reply carries a `backend=` field naming the
    /// rendezvous-chosen backend alongside `id=` and `state=`.
    pub fn submit_fields(
        &mut self,
        args: &SubmitArgs,
    ) -> Result<BTreeMap<String, String>, ClientError> {
        // The wire format is whitespace-delimited tokens: a value with
        // spaces would be malformed, or silently inject extra keys.
        for value in [&args.dataset, &args.path, &args.algo]
            .into_iter()
            .flatten()
        {
            if value.chars().any(char::is_whitespace) {
                return Err(ClientError::Protocol(format!(
                    "{value:?} contains whitespace, which the wire protocol cannot carry"
                )));
            }
        }
        self.request(&args.to_line())
    }

    /// Submits a job, returning its id.
    pub fn submit(&mut self, args: &SubmitArgs) -> Result<JobId, ClientError> {
        let fields = self.submit_fields(args)?;
        fields
            .get("id")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol("SUBMIT reply without id".into()))
    }

    /// One `STATUS` line as a field map.
    pub fn status(&mut self, id: JobId) -> Result<BTreeMap<String, String>, ClientError> {
        self.request(&format!("STATUS {id}"))
    }

    /// Requests cancellation; returns the state after the request.
    pub fn cancel(&mut self, id: JobId) -> Result<String, ClientError> {
        let fields = self.request(&format!("CANCEL {id}"))?;
        fields
            .get("state")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("CANCEL reply without state".into()))
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<BTreeMap<String, String>, ClientError> {
        self.request("STATS")
    }

    /// Router admin: registers (or revives) a backend.
    pub fn add_node(&mut self, addr: &str) -> Result<(), ClientError> {
        self.request(&format!("ADDNODE {addr}")).map(|_| ())
    }

    /// Router admin: removes a backend from the routing set.
    pub fn drop_node(&mut self, addr: &str) -> Result<(), ClientError> {
        self.request(&format!("DROPNODE {addr}")).map(|_| ())
    }

    /// Router backend registry, one field map per `NODE` line.
    pub fn nodes(&mut self) -> Result<Vec<BTreeMap<String, String>>, ClientError> {
        self.multiline("NODES")
    }

    /// Router admin: recompute rendezvous placement for queued jobs and
    /// migrate the ones whose owner changed. Returns how many moved.
    pub fn rebalance(&mut self) -> Result<u64, ClientError> {
        let fields = self.request("REBALANCE")?;
        fields
            .get("rebalanced")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol("REBALANCE reply without rebalanced".into()))
    }

    /// One multi-line request: sends `verb`, collects the fields of each
    /// line until the terminating `END` (shared by `LIST` and `NODES`).
    fn multiline(&mut self, verb: &str) -> Result<Vec<BTreeMap<String, String>>, ClientError> {
        self.send(verb)?;
        let mut rows = Vec::new();
        loop {
            let line = self.read_line()?;
            if let Some(msg) = line.strip_prefix("ERR ") {
                return Err(ClientError::Remote(msg.to_string()));
            }
            if line.starts_with("END") {
                return Ok(rows);
            }
            rows.push(protocol::parse_response_fields(&line).map_err(ClientError::Protocol)?);
        }
    }

    /// All jobs, one field map per `JOB` line.
    pub fn list(&mut self) -> Result<Vec<BTreeMap<String, String>>, ClientError> {
        self.multiline("LIST")
    }

    /// Streams a job from the beginning: `on_plex(seq, plex)` per result,
    /// then returns the `END` line's fields (`state=`, `results=`).
    pub fn stream(
        &mut self,
        id: JobId,
        mut on_plex: impl FnMut(u64, Vec<u32>),
    ) -> Result<BTreeMap<String, String>, ClientError> {
        self.stream_while(id, |seq, plex| {
            on_plex(seq, plex);
            true
        })
        .map(|end| end.expect("an unaborted stream always ends with END"))
    }

    /// Resumes a stream at `from` (`STREAM <id> FROM <seq>`): delivers only
    /// results with `seq >= from`, then the `END` fields. A client whose
    /// connection died mid-stream passes the first seq it has not consumed
    /// and receives exactly the missing suffix — nothing is re-delivered.
    pub fn stream_from(
        &mut self,
        id: JobId,
        from: u64,
        mut on_plex: impl FnMut(u64, Vec<u32>),
    ) -> Result<BTreeMap<String, String>, ClientError> {
        self.stream_while_from(id, from, |seq, plex| {
            on_plex(seq, plex);
            true
        })
        .map(|end| end.expect("an unaborted stream always ends with END"))
    }

    /// Like [`Client::stream`], but `on_plex` returning `false` abandons the
    /// stream immediately with `Ok(None)` — the caller should then drop this
    /// client, which closes the connection and lets the server stop
    /// producing. Used by the router to stop draining a backend once its own
    /// downstream client has gone away.
    pub fn stream_while(
        &mut self,
        id: JobId,
        on_plex: impl FnMut(u64, Vec<u32>) -> bool,
    ) -> Result<Option<BTreeMap<String, String>>, ClientError> {
        self.stream_while_from(id, 0, on_plex)
    }

    /// [`Client::stream_while`] with a resume offset — the primitive under
    /// all four streaming entry points (the router's transparent mid-stream
    /// failover uses exactly this).
    pub fn stream_while_from(
        &mut self,
        id: JobId,
        from: u64,
        mut on_plex: impl FnMut(u64, Vec<u32>) -> bool,
    ) -> Result<Option<BTreeMap<String, String>>, ClientError> {
        self.send(&protocol::render_request(&protocol::Request::Stream(
            id, from,
        )))?;
        loop {
            let line = self.read_line()?;
            if let Some(msg) = line.strip_prefix("ERR ") {
                return Err(ClientError::Remote(msg.to_string()));
            }
            if line.starts_with("END") {
                return protocol::parse_response_fields(&line)
                    .map(Some)
                    .map_err(ClientError::Protocol);
            }
            let (_, seq, plex) = protocol::parse_plex_line(&line).map_err(ClientError::Protocol)?;
            if !on_plex(seq, plex) {
                return Ok(None);
            }
        }
    }
}
