//! A small blocking client for the `kplexd` wire protocol.
//!
//! Used by `kplex submit`, the `kplexd smoke` self-test and the integration
//! tests. One connection handles one request at a time (the protocol is
//! strictly request → response); cancelling a job that is being streamed on
//! this connection therefore needs a second connection.

use crate::protocol::{self, JobId, SubmitArgs};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered `ERR …`.
    Remote(String),
    /// The server answered something the client cannot parse.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Remote(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running `kplexd`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        Ok(line.trim_end().to_string())
    }

    /// One simple request: sends `line`, expects a single `OK …` line and
    /// returns its fields.
    fn request(&mut self, line: &str) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(line)?;
        let resp = self.read_line()?;
        if let Some(msg) = resp.strip_prefix("ERR ") {
            return Err(ClientError::Remote(msg.to_string()));
        }
        if !resp.starts_with("OK") {
            return Err(ClientError::Protocol(format!("unexpected reply {resp:?}")));
        }
        protocol::parse_response_fields(&resp).map_err(ClientError::Protocol)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("PING")?;
        match self.read_line()?.as_str() {
            "OK pong" => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Submits a job, returning its id.
    pub fn submit(&mut self, args: &SubmitArgs) -> Result<JobId, ClientError> {
        // The wire format is whitespace-delimited tokens: a value with
        // spaces would be malformed, or silently inject extra keys.
        for value in [&args.dataset, &args.path, &args.algo]
            .into_iter()
            .flatten()
        {
            if value.chars().any(char::is_whitespace) {
                return Err(ClientError::Protocol(format!(
                    "{value:?} contains whitespace, which the wire protocol cannot carry"
                )));
            }
        }
        let fields = self.request(&args.to_line())?;
        fields
            .get("id")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol("SUBMIT reply without id".into()))
    }

    /// One `STATUS` line as a field map.
    pub fn status(&mut self, id: JobId) -> Result<BTreeMap<String, String>, ClientError> {
        self.request(&format!("STATUS {id}"))
    }

    /// Requests cancellation; returns the state after the request.
    pub fn cancel(&mut self, id: JobId) -> Result<String, ClientError> {
        let fields = self.request(&format!("CANCEL {id}"))?;
        fields
            .get("state")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("CANCEL reply without state".into()))
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<BTreeMap<String, String>, ClientError> {
        self.request("STATS")
    }

    /// All jobs, one field map per `JOB` line.
    pub fn list(&mut self) -> Result<Vec<BTreeMap<String, String>>, ClientError> {
        self.send("LIST")?;
        let mut jobs = Vec::new();
        loop {
            let line = self.read_line()?;
            if let Some(msg) = line.strip_prefix("ERR ") {
                return Err(ClientError::Remote(msg.to_string()));
            }
            if line.starts_with("END") {
                return Ok(jobs);
            }
            jobs.push(protocol::parse_response_fields(&line).map_err(ClientError::Protocol)?);
        }
    }

    /// Streams a job from the beginning: `on_plex(seq, plex)` per result,
    /// then returns the `END` line's fields (`state=`, `results=`).
    pub fn stream(
        &mut self,
        id: JobId,
        mut on_plex: impl FnMut(u64, Vec<u32>),
    ) -> Result<BTreeMap<String, String>, ClientError> {
        self.send(&format!("STREAM {id}"))?;
        loop {
            let line = self.read_line()?;
            if let Some(msg) = line.strip_prefix("ERR ") {
                return Err(ClientError::Remote(msg.to_string()));
            }
            if line.starts_with("END") {
                return protocol::parse_response_fields(&line).map_err(ClientError::Protocol);
            }
            let (_, seq, plex) = protocol::parse_plex_line(&line).map_err(ClientError::Protocol)?;
            on_plex(seq, plex);
        }
    }
}
