//! The principal store: authentication tokens, per-tenant quotas and
//! fair-share weights.
//!
//! A **principal** is a tenant identity: jobs are attributed to it, quotas
//! are enforced against it, and the fair-share scheduler weighs its
//! sub-queue by it. Principals are provisioned in a passwd-style text file
//! (`kplexd --principals` / `kplexr --principals`), one per line,
//! colon-separated:
//!
//! ```text
//! # token:name:weight:max-queued:max-running:flags
//! s3cr3t-alice:alice:4:16:2:-
//! s3cr3t-flood:batch:1:64:8:-
//! s3cr3t-root:root:1:0:0:admin
//! ```
//!
//! * `token` — the secret a client presents via `AUTH <token>`. Tokens are
//!   never echoed back on any reply line (see
//!   [`crate::protocol::redact_secrets`]).
//! * `name` — the principal's public name; appears in `STATS`, journal
//!   attribution records and proxied job tags.
//! * `weight` — deficit-round-robin share (≥ 1): a weight-4 tenant gets 4
//!   dispatches per scheduler rotation for every 1 a weight-1 tenant gets.
//! * `max-queued` / `max-running` — admission quotas; `0` means unlimited.
//! * `flags` — `admin` or `-`. The admin principal sees every tenant's jobs
//!   and may tag submissions with another principal's name (that is how the
//!   router proxies jobs on a tenant's behalf).
//!
//! Tokens and names are restricted to `[A-Za-z0-9_.-]` so they are
//! wire-safe as `key=value` tokens and — crucially — can never contain the
//! `*` characters redaction substitutes, which makes token scrubbing
//! splice-proof (see [`crate::protocol::redact_secrets`]).
//!
//! Without `--principals` a server runs exactly as before: one anonymous
//! queue, no `AUTH`, no scoping — the store being absent is the
//! compatibility switch.

use std::collections::BTreeMap;

/// One provisioned tenant identity (see the module docs for the file
/// format that defines these fields).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Principal {
    /// Public tenant name (wire-safe; appears in `STATS` and journal
    /// attribution — never the token).
    pub name: String,
    /// Deficit-round-robin weight (≥ 1).
    pub weight: u64,
    /// Max jobs waiting in this tenant's sub-queue (0 = unlimited).
    pub max_queued: usize,
    /// Max jobs of this tenant running at once (0 = unlimited).
    pub max_running: usize,
    /// Admin principals see every tenant's jobs and may submit on another
    /// principal's behalf (the router's proxy path).
    pub admin: bool,
}

/// Token → principal lookup table, parsed from a `--principals` file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrincipalStore {
    by_token: BTreeMap<String, Principal>,
}

/// `true` iff every char is in the wire-safe principal charset
/// `[A-Za-z0-9_.-]` (and the string is non-empty).
fn wire_safe(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

impl PrincipalStore {
    /// Parses the passwd-style principals text. Blank lines and `#`
    /// comments are skipped; any malformed line fails the whole load loudly
    /// (a half-provisioned tenant set is worse than no server).
    pub fn parse(text: &str) -> Result<PrincipalStore, String> {
        let mut by_token = BTreeMap::new();
        let mut names = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = |msg: String| format!("principals line {}: {msg}", lineno + 1);
            let fields: Vec<&str> = line.split(':').collect();
            let [token, name, weight, max_queued, max_running, flags] = fields[..] else {
                return Err(at(format!(
                    "expected 6 colon-separated fields \
                     (token:name:weight:max-queued:max-running:flags), got {}",
                    fields.len()
                )));
            };
            if !wire_safe(token) {
                return Err(at("token must be non-empty [A-Za-z0-9_.-]".into()));
            }
            if !wire_safe(name) {
                return Err(at(format!(
                    "name {name:?} must be non-empty [A-Za-z0-9_.-]"
                )));
            }
            let weight: u64 = weight
                .parse()
                .ok()
                .filter(|&w| w >= 1)
                .ok_or_else(|| at(format!("weight {weight:?} must be an integer >= 1")))?;
            let max_queued: usize = max_queued
                .parse()
                .map_err(|_| at(format!("max-queued {max_queued:?} must be an integer")))?;
            let max_running: usize = max_running
                .parse()
                .map_err(|_| at(format!("max-running {max_running:?} must be an integer")))?;
            let admin = match flags {
                "admin" => true,
                "-" => false,
                other => return Err(at(format!("flags {other:?} must be `admin` or `-`"))),
            };
            if names.insert(name.to_string(), ()).is_some() {
                return Err(at(format!("duplicate principal name {name:?}")));
            }
            let principal = Principal {
                name: name.to_string(),
                weight,
                max_queued,
                max_running,
                admin,
            };
            if by_token.insert(token.to_string(), principal).is_some() {
                return Err(at("duplicate token".into()));
            }
        }
        Ok(PrincipalStore { by_token })
    }

    /// Loads and parses a principals file.
    pub fn load(path: &std::path::Path) -> Result<PrincipalStore, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading principals {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Token → principal (the `AUTH` verb). `None` means unknown token —
    /// callers must not echo the token back in the error.
    pub fn authenticate(&self, token: &str) -> Option<&Principal> {
        self.by_token.get(token)
    }

    /// Principal by public name (quota/weight lookups for tagged jobs).
    pub fn by_name(&self, name: &str) -> Option<&Principal> {
        self.by_token.values().find(|p| p.name == name)
    }

    /// Every registered secret token — the redaction list for
    /// [`crate::protocol::redact_secrets`].
    pub fn tokens(&self) -> Vec<String> {
        self.by_token.keys().cloned().collect()
    }

    /// The token of the first admin principal (token order), if any. The
    /// router uses it to authenticate its proxied connections to backends.
    pub fn admin_token(&self) -> Option<&str> {
        self.by_token
            .iter()
            .find(|(_, p)| p.admin)
            .map(|(t, _)| t.as_str())
    }

    /// All principals, ordered by name (deterministic `STATS` rendering).
    pub fn principals(&self) -> Vec<&Principal> {
        let mut v: Vec<&Principal> = self.by_token.values().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Number of provisioned principals.
    pub fn len(&self) -> usize {
        self.by_token.len()
    }

    /// `true` when no principal is provisioned.
    pub fn is_empty(&self) -> bool {
        self.by_token.is_empty()
    }
}

// --- byte accounting ---------------------------------------------------------

/// The accounted byte cost of one streamed result of `vertices` members:
/// 4 bytes per vertex id (`u32`), computed with saturating arithmetic —
/// a tenant's cumulative counter must never wrap, whatever job sequence it
/// accumulates (pinned by a property test).
pub fn plex_bytes(vertices: usize) -> u64 {
    (vertices as u64).saturating_mul(4)
}

/// Saturating accumulate for cumulative per-tenant byte counters:
/// monotone non-decreasing, caps at `u64::MAX` instead of wrapping.
pub fn add_bytes(total: u64, delta: u64) -> u64 {
    total.saturating_add(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment line

tok-alice:alice:4:16:2:-
tok-batch:batch:1:64:8:-
tok-root:root:1:0:0:admin
";

    #[test]
    fn parses_the_sample_file() {
        let store = PrincipalStore::parse(SAMPLE).unwrap();
        assert_eq!(store.len(), 3);
        let alice = store.authenticate("tok-alice").unwrap();
        assert_eq!(alice.name, "alice");
        assert_eq!(alice.weight, 4);
        assert_eq!(alice.max_queued, 16);
        assert_eq!(alice.max_running, 2);
        assert!(!alice.admin);
        assert!(store.authenticate("tok-root").unwrap().admin);
        assert!(store.authenticate("nope").is_none());
        assert_eq!(store.by_name("batch").unwrap().max_running, 8);
        assert_eq!(store.admin_token(), Some("tok-root"));
        let names: Vec<&str> = store.principals().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["alice", "batch", "root"]);
        let mut tokens = store.tokens();
        tokens.sort();
        assert_eq!(tokens, ["tok-alice", "tok-batch", "tok-root"]);
    }

    #[test]
    fn malformed_lines_fail_loudly() {
        for bad in [
            "tok:name:1:0:0",                 // 5 fields
            "tok:name:1:0:0:-:extra",         // 7 fields
            ":name:1:0:0:-",                  // empty token
            "tok::1:0:0:-",                   // empty name
            "tok:na me:1:0:0:-",              // whitespace in name
            "tok:name:0:0:0:-",               // weight 0
            "tok:name:x:0:0:-",               // bad weight
            "tok:name:1:x:0:-",               // bad max-queued
            "tok:name:1:0:x:-",               // bad max-running
            "tok:name:1:0:0:superuser",       // bad flags
            "tok=1:name:1:0:0:-",             // `=` breaks key=value framing
            "a:x:1:0:0:-\na:y:1:0:0:-",       // duplicate token
            "a:same:1:0:0:-\nb:same:1:0:0:-", // duplicate name
        ] {
            assert!(
                PrincipalStore::parse(bad).is_err(),
                "{bad:?} must not parse"
            );
        }
        assert!(PrincipalStore::parse("# only comments\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn byte_accounting_saturates() {
        assert_eq!(plex_bytes(3), 12);
        assert_eq!(plex_bytes(usize::MAX), u64::MAX);
        assert_eq!(add_bytes(10, 6), 16);
        assert_eq!(add_bytes(u64::MAX - 1, 6), u64::MAX);
        assert_eq!(add_bytes(u64::MAX, u64::MAX), u64::MAX);
    }
}
