//! `kplex` — command-line tool for enumerating large maximal k-plexes.
//!
//! Mirrors the tool released with the paper: point it at an edge-list file
//! (or a named synthetic dataset), pick an algorithm and (k, q), and it
//! streams maximal k-plexes. Argument parsing is hand-rolled (the project
//! uses no third-party CLI dependency).

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        // Distinct exit codes: 2 for bad arguments, 1 for runtime failures,
        // so scripts can tell a typo from a failed job.
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}
