//! CLI subcommands.

use crate::args::Args;
use kplex_baselines::Algorithm;
use kplex_core::{CountSink, FnSink, Params, SinkFlow};
use kplex_datasets::all_datasets;
use kplex_graph::{io, CsrGraph, GraphStats};
use kplex_parallel::{par_enumerate_count, EngineOptions};
use kplex_service::{Client, RouterConfig, ServerConfig, SubmitArgs};
use std::io::Write;
use std::time::Instant;

const USAGE: &str = "\
kplex — enumeration of large maximal k-plexes (EDBT 2025 reproduction)

USAGE:
  kplex enumerate --k K --q Q (--input FILE | --dataset NAME)
                  [--algo ALGO] [--threads N] [--timeout-us U]
                  [--count-only] [--limit N]
  kplex maximum   --k K [--q-floor Q] (--input FILE | --dataset NAME)
  kplex verify    --k K --q Q --results FILE (--input FILE | --dataset NAME)
  kplex stats     (--input FILE | --dataset NAME)
  kplex generate  --dataset NAME --output FILE
  kplex convert   (--input FILE | --dataset NAME) --output FILE.kpx
  kplex serve     [--addr HOST:PORT] [--runners N] [--queue-cap N]
                  [--cache-cap N] [--threads N] [--store KIND] [--retain N]
                  [--journal PATH] [--delivery-batch N] [--principals FILE]
  kplex route     [--addr HOST:PORT] --backend HOST:PORT [--backend ...]
                  [--probe-ms N] [--probe-timeout-ms N]
                  [--probe-fails N] [--probe-rises N] [--replicas N]
                  [--principals FILE]
  kplex submit    --addr HOST:PORT --k K --q Q
                  (--dataset NAME | --input FILE) [--threads N] [--algo ALGO]
                  [--store KIND] [--limit N] [--timeout-ms N]
                  [--throttle-us N] [--tau-us N] [--count-only]
                  [--token TOKEN]
  kplex auth      check --addr HOST:PORT --token TOKEN
  kplex datasets
  kplex help

OPTIONS:
  --k K            plex slack (every member may miss up to k links)
  --q Q            minimum plex size (requires q >= 2k-1)
  --input FILE     graph file (see --format)
  --format FMT     edges (default) | dimacs | metis
  --dataset NAME   one of the built-in Table 2 stand-ins (see `kplex datasets`)
  --algo ALGO      ours | ours_p | ours-ub | ours-ub+fp | basic | basic+r1 |
                   basic+r2 | listplex | fp          (default: ours)
  --threads N      parallel engine with N workers    (default: sequential)
  --timeout-us U   straggler timeout in microseconds (default: 100)
  --store KIND     graph storage backend: csr (in-RAM, fastest), compressed
                   (varint rows, ~half the bytes) or mmap (out-of-core .kpx
                   file; graphs larger than RAM)     (default: csr)
  --count-only     print only the number of k-plexes
  --limit N        stop after N results

`convert` writes a graph into the chunked `.kpx` on-disk format that the
mmap store serves without loading the graph into RAM;
`serve` runs the kplexd job server in-process (`--journal` makes accepted
jobs survive a restart); `route` runs the kplexr shard router over one or
more kplexd backends (`--probe-ms 0` disables its health prober); `submit`
sends a job to a running server or router and streams its results (see
crates/service/PROTOCOL.md).

`--principals FILE` enables multi-tenancy (a passwd-style file of
token:name:weight:max-queued:max-running:flags lines, see PROTOCOL.md
\"Authentication & quotas\"); against such a server `submit` needs
--token TOKEN, and `auth check` verifies a token and prints its principal
without submitting anything.

EXIT CODES: 0 success, 1 runtime failure, 2 usage error (bad arguments).
";

/// A dispatch failure, split by exit code: bad arguments (2) vs failures of
/// a well-formed invocation (1).
#[derive(Debug, PartialEq, Eq)]
pub enum CliError {
    /// The invocation itself is wrong (unknown flag/command, bad value).
    Usage(String),
    /// The invocation was valid but the work failed (I/O, server error, …).
    Runtime(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }

    /// The message to print on stderr.
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        }
    }
}

// Bare-string errors from helpers default to runtime failures; argument
// parsing wraps explicitly with `usage`.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

fn usage(e: impl std::fmt::Display) -> CliError {
    CliError::Usage(e.to_string())
}

/// Entry point shared with the binary's `main`.
pub fn dispatch(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv);
    let cmd = args
        .positional()
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    match cmd {
        "enumerate" => cmd_enumerate(&args),
        "maximum" => cmd_maximum(&args),
        "verify" => cmd_verify(&args),
        "stats" => cmd_stats(&args),
        "generate" => cmd_generate(&args),
        "convert" => cmd_convert(&args),
        "serve" => cmd_serve(&args),
        "route" => cmd_route(&args),
        "submit" => cmd_submit(&args),
        "auth" => cmd_auth(&args),
        "datasets" => cmd_datasets(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(usage(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn load_graph(args: &Args) -> Result<(CsrGraph, String), CliError> {
    let format = args.get("format").unwrap_or("edges").to_string();
    match (args.get("input"), args.get("dataset")) {
        (Some(path), None) => {
            let g = match format.as_str() {
                "edges" => {
                    io::read_edge_list(path)
                        .map_err(|e| CliError::Runtime(e.to_string()))?
                        .0
                }
                "dimacs" => {
                    let f =
                        std::fs::File::open(path).map_err(|e| CliError::Runtime(e.to_string()))?;
                    kplex_graph::io_formats::parse_dimacs(f)
                        .map_err(|e| CliError::Runtime(e.to_string()))?
                }
                "metis" => {
                    let f =
                        std::fs::File::open(path).map_err(|e| CliError::Runtime(e.to_string()))?;
                    kplex_graph::io_formats::parse_metis(f)
                        .map_err(|e| CliError::Runtime(e.to_string()))?
                }
                other => {
                    return Err(usage(format!(
                        "unknown --format {other:?} (edges|dimacs|metis)"
                    )))
                }
            };
            Ok((g, path.to_string()))
        }
        (None, Some(name)) => {
            let ds = kplex_datasets::by_name(name)
                .ok_or_else(|| usage(format!("unknown dataset {name:?} (try `kplex datasets`)")))?;
            Ok((ds.load(), name.to_string()))
        }
        _ => Err(usage(
            "provide exactly one of --input FILE or --dataset NAME",
        )),
    }
}

fn cmd_enumerate(args: &Args) -> Result<(), CliError> {
    let k: usize = args.require("k").map_err(usage)?;
    let q: usize = args.require("q").map_err(usage)?;
    let params = Params::new(k, q).map_err(usage)?;
    let algo_name = args.get("algo").unwrap_or("ours").to_string();
    let algo = Algorithm::parse(&algo_name)
        .ok_or_else(|| usage(format!("unknown algorithm {algo_name:?}")))?;
    let threads: usize = args.get_parse("threads", 0).map_err(usage)?;
    let timeout_us: u64 = args.get_parse("timeout-us", 100).map_err(usage)?;
    let count_only = args.flag("count-only");
    let limit: u64 = args.get_parse("limit", u64::MAX).map_err(usage)?;
    let (g, source) = load_graph(args)?;
    args.reject_unknown().map_err(usage)?;

    eprintln!(
        "# {source}: n={} m={} | algo={} k={k} q={q}{}",
        g.num_vertices(),
        g.num_edges(),
        algo.name(),
        if threads > 0 {
            format!(" threads={threads}")
        } else {
            String::new()
        }
    );
    let start = Instant::now();
    if threads > 0 {
        if !count_only {
            return Err(usage(
                "parallel mode currently supports --count-only output",
            ));
        }
        let mut opts = EngineOptions::with_threads(threads);
        opts.timeout = (timeout_us > 0).then(|| std::time::Duration::from_micros(timeout_us));
        if algo == Algorithm::Fp {
            opts.serial_construction = true;
            opts.single_task_per_seed = true;
            opts.timeout = None;
        } else if algo == Algorithm::ListPlex {
            opts.timeout = None;
        }
        let (count, stats) = par_enumerate_count(&g, params, &algo.config(), &opts);
        println!("{count}");
        eprintln!(
            "# {} in {:.3}s | {stats}",
            count,
            start.elapsed().as_secs_f64()
        );
        return Ok(());
    }
    if count_only {
        let mut sink = CountSink::default();
        let stats = algo.run(&g, params, &mut sink);
        println!("{}", sink.count);
        eprintln!(
            "# {} maximal {k}-plexes (q={q}) in {:.3}s | {stats}",
            sink.count,
            start.elapsed().as_secs_f64()
        );
    } else {
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        let mut printed = 0u64;
        let mut failed = false;
        {
            let mut sink = FnSink(|vs: &[u32]| {
                let line = vs
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                if writeln!(out, "{line}").is_err() {
                    failed = true;
                    return SinkFlow::Stop;
                }
                printed += 1;
                if printed >= limit {
                    SinkFlow::Stop
                } else {
                    SinkFlow::Continue
                }
            });
            let stats = algo.run(&g, params, &mut sink);
            eprintln!(
                "# {} maximal {k}-plexes (q={q}) in {:.3}s | {stats}",
                stats.outputs,
                start.elapsed().as_secs_f64()
            );
        }
        out.flush().map_err(|e| CliError::Runtime(e.to_string()))?;
        if failed {
            return Err(CliError::Runtime("failed writing results to stdout".into()));
        }
    }
    Ok(())
}

fn cmd_maximum(args: &Args) -> Result<(), CliError> {
    let k: usize = args.require("k").map_err(usage)?;
    let q_floor: usize = args.get_parse("q-floor", 2 * k.max(1) - 1).map_err(usage)?;
    let (g, source) = load_graph(args)?;
    args.reject_unknown().map_err(usage)?;
    let start = Instant::now();
    let result = kplex_core::maximum_kplex(&g, k, q_floor, &kplex_core::AlgoConfig::ours());
    match &result.plex {
        Some(p) => {
            let line = p
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            println!("{line}");
            eprintln!(
                "# maximum {k}-plex of {source} has {} vertices (floor q={q_floor}) in {:.3}s | {}",
                p.len(),
                start.elapsed().as_secs_f64(),
                result.stats
            );
        }
        None => {
            eprintln!(
                "# no {k}-plex with >= {q_floor} vertices in {source} ({:.3}s)",
                start.elapsed().as_secs_f64()
            );
        }
    }
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), CliError> {
    let k: usize = args.require("k").map_err(usage)?;
    let q: usize = args.require("q").map_err(usage)?;
    let results_path: String = args.require("results").map_err(usage)?;
    let (g, source) = load_graph(args)?;
    args.reject_unknown().map_err(usage)?;
    // One plex per line, whitespace-separated vertex ids.
    let text =
        std::fs::read_to_string(&results_path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let mut results: Vec<Vec<u32>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut set = Vec::new();
        for tok in line.split_whitespace() {
            let v: u32 = tok.parse().map_err(|e| {
                CliError::Runtime(format!("{results_path}:{}: bad vertex id: {e}", lineno + 1))
            })?;
            set.push(v);
        }
        results.push(set);
    }
    let violations = if g.num_vertices() <= 200 {
        kplex_core::verify_complete(&g, k, q, &results)
    } else {
        kplex_core::verify_results(&g, k, q, &results)
    };
    if violations.is_empty() {
        println!(
            "OK: {} result(s) verified against {source} (k={k}, q={q})",
            results.len()
        );
        Ok(())
    } else {
        for v in violations.iter().take(20) {
            eprintln!("violation: {v}");
        }
        Err(CliError::Runtime(format!(
            "{} violation(s) found",
            violations.len()
        )))
    }
}

fn cmd_stats(args: &Args) -> Result<(), CliError> {
    let (g, source) = load_graph(args)?;
    args.reject_unknown().map_err(usage)?;
    let s = GraphStats::compute(&g);
    println!("{source}: {s}");
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), CliError> {
    let name = args
        .get("dataset")
        .ok_or_else(|| usage("generate requires --dataset NAME"))?
        .to_string();
    let output = args
        .get("output")
        .ok_or_else(|| usage("generate requires --output FILE"))?
        .to_string();
    args.reject_unknown().map_err(usage)?;
    let ds =
        kplex_datasets::by_name(&name).ok_or_else(|| usage(format!("unknown dataset {name:?}")))?;
    let g = ds.load();
    let f = std::fs::File::create(&output).map_err(|e| CliError::Runtime(e.to_string()))?;
    io::write_edge_list(&g, f).map_err(|e| CliError::Runtime(e.to_string()))?;
    eprintln!(
        "# wrote {} ({} vertices, {} edges)",
        output,
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

/// Converts a graph into the chunked `.kpx` on-disk format served by the
/// mmap store (`--store mmap`): written atomically, verified by re-opening.
fn cmd_convert(args: &Args) -> Result<(), CliError> {
    let output = args
        .get("output")
        .ok_or_else(|| usage("convert requires --output FILE.kpx"))?
        .to_string();
    let (g, source) = load_graph(args)?;
    args.reject_unknown().map_err(usage)?;
    kplex_graph::write_kpx(&g, &output).map_err(|e| CliError::Runtime(e.to_string()))?;
    // Re-open what we just wrote: a truncated or unmappable file should fail
    // here, at convert time, not later when a server tries to serve it.
    let store = kplex_graph::StoreBackend::open_mmap(&output)
        .map_err(|e| CliError::Runtime(format!("verifying {output}: {e}")))?;
    use kplex_graph::GraphStore;
    let bytes = std::fs::metadata(&output)
        .map(|m| m.len())
        .unwrap_or_default();
    eprintln!(
        "# {source} -> {output} ({} vertices, {} edges, {bytes} bytes on disk)",
        store.num_vertices(),
        store.num_edges(),
    );
    Ok(())
}

/// Runs the kplexd job server in-process (same engine, same protocol as the
/// standalone `kplexd` binary).
fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let mut cfg = ServerConfig::default();
    if let Some(addr) = args.get("addr") {
        cfg.addr = addr.to_string();
    }
    cfg.runners = args.get_parse("runners", cfg.runners).map_err(usage)?;
    cfg.queue_cap = args.get_parse("queue-cap", cfg.queue_cap).map_err(usage)?;
    cfg.cache_cap = args.get_parse("cache-cap", cfg.cache_cap).map_err(usage)?;
    cfg.default_threads = args
        .get_parse("threads", cfg.default_threads)
        .map_err(usage)?;
    if let Some(s) = args.get("store") {
        cfg.default_store = kplex_graph::StoreKind::parse(s)
            .ok_or_else(|| usage(format!("invalid --store {s:?} (csr, compressed or mmap)")))?;
    }
    cfg.retain_terminal = args
        .get_parse("retain", cfg.retain_terminal)
        .map_err(usage)?;
    cfg.journal = args.get("journal").map(std::path::PathBuf::from);
    cfg.delivery_batch = args
        .get_parse("delivery-batch", cfg.delivery_batch)
        .map_err(usage)?;
    if let Some(path) = args.get("principals") {
        cfg.principals = Some(
            kplex_service::PrincipalStore::load(std::path::Path::new(path))
                .map_err(|e| CliError::Runtime(format!("--principals: {e}")))?,
        );
    }
    args.reject_unknown().map_err(usage)?;
    let server = kplex_service::Server::bind(&cfg)
        .map_err(|e| CliError::Runtime(format!("cannot bind {}: {e}", cfg.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    eprintln!(
        "# kplexd listening on {addr} ({} runners, queue {}, cache {}, journal {})",
        cfg.runners,
        cfg.queue_cap,
        cfg.cache_cap,
        cfg.journal
            .as_ref()
            .map_or("off".to_string(), |p| p.display().to_string())
    );
    server.run().map_err(|e| CliError::Runtime(e.to_string()))
}

/// Runs the kplexr shard router in-process: same engine-facing protocol as
/// `kplexd`, but submissions are rendezvous-routed across the given
/// backends (see PROTOCOL.md, "The shard router").
fn cmd_route(args: &Args) -> Result<(), CliError> {
    let mut cfg = RouterConfig::default();
    if let Some(addr) = args.get("addr") {
        cfg.addr = addr.to_string();
    }
    cfg.backends = args
        .get_all("backend")
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut probe = kplex_service::ProbeConfig::default();
    let probe_ms: u64 = args
        .get_parse("probe-ms", probe.interval.as_millis() as u64)
        .map_err(usage)?;
    let timeout_ms: u64 = args
        .get_parse("probe-timeout-ms", probe.timeout.as_millis() as u64)
        .map_err(usage)?;
    probe.timeout = std::time::Duration::from_millis(timeout_ms.max(1));
    probe.fall = args
        .get_parse("probe-fails", probe.fall)
        .map_err(usage)?
        .max(1);
    probe.rise = args
        .get_parse("probe-rises", probe.rise)
        .map_err(usage)?
        .max(1);
    if probe_ms > 0 {
        probe.interval = std::time::Duration::from_millis(probe_ms);
        cfg.probe = Some(probe);
    }
    cfg.replicas = args
        .get_parse("replicas", cfg.replicas)
        .map_err(usage)?
        .max(1);
    if let Some(path) = args.get("principals") {
        cfg.principals = Some(
            kplex_service::PrincipalStore::load(std::path::Path::new(path))
                .map_err(|e| CliError::Runtime(format!("--principals: {e}")))?,
        );
    }
    args.reject_unknown().map_err(usage)?;
    if cfg.backends.is_empty() {
        return Err(usage("route requires at least one --backend HOST:PORT"));
    }
    let router = kplex_service::Router::bind(&cfg)
        .map_err(|e| CliError::Runtime(format!("cannot bind {}: {e}", cfg.addr)))?;
    let addr = router
        .local_addr()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    eprintln!(
        "# kplexr listening on {addr}, routing over {} backend(s): {} (probe {})",
        cfg.backends.len(),
        cfg.backends.join(", "),
        cfg.probe.as_ref().map_or("off".to_string(), |p| format!(
            "every {}ms",
            p.interval.as_millis()
        ))
    );
    router.run().map_err(|e| CliError::Runtime(e.to_string()))
}

/// Submits a job to a running kplexd and streams its results to stdout.
fn cmd_submit(args: &Args) -> Result<(), CliError> {
    let addr: String = args.require("addr").map_err(usage)?;
    let k: usize = args.require("k").map_err(usage)?;
    let q: usize = args.require("q").map_err(usage)?;
    Params::new(k, q).map_err(usage)?;
    let mut submit = SubmitArgs {
        k,
        q,
        ..SubmitArgs::default()
    };
    match (args.get("dataset"), args.get("input")) {
        (Some(name), None) => submit.dataset = Some(name.to_string()),
        (None, Some(path)) => submit.path = Some(path.to_string()),
        _ => {
            return Err(usage(
                "provide exactly one of --dataset NAME or --input FILE",
            ))
        }
    }
    // The wire format is whitespace-delimited key=value tokens, so a value
    // with spaces would be malformed at best and inject extra protocol
    // keys at worst. Reject it here as a clean usage error.
    for value in [&submit.dataset, &submit.path].into_iter().flatten() {
        if value.chars().any(char::is_whitespace) {
            return Err(usage(format!(
                "{value:?} contains whitespace, which the wire protocol cannot carry"
            )));
        }
    }
    let threads: usize = args.get_parse("threads", 0).map_err(usage)?;
    if threads > 0 {
        submit.threads = Some(threads);
    }
    if let Some(algo) = args.get("algo") {
        submit.algo = Some(algo.to_string());
    }
    if let Some(store) = args.get("store") {
        // Validate locally so a typo is a usage error, not a server reject.
        kplex_graph::StoreKind::parse(store).ok_or_else(|| {
            usage(format!(
                "invalid --store {store:?} (csr, compressed or mmap)"
            ))
        })?;
        submit.store = Some(store.to_string());
    }
    let limit: u64 = args.get_parse("limit", 0).map_err(usage)?;
    if limit > 0 {
        submit.limit = Some(limit);
    }
    let timeout_ms: u64 = args.get_parse("timeout-ms", 0).map_err(usage)?;
    if timeout_ms > 0 {
        submit.timeout_ms = Some(timeout_ms);
    }
    let throttle_us: u64 = args.get_parse("throttle-us", 0).map_err(usage)?;
    if throttle_us > 0 {
        submit.throttle_us = Some(throttle_us);
    }
    let tau_us: u64 = args.get_parse("tau-us", 0).map_err(usage)?;
    if tau_us > 0 {
        submit.tau_us = Some(tau_us);
    }
    let count_only = args.flag("count-only");
    let token = args.get("token").map(str::to_string);
    args.reject_unknown().map_err(usage)?;

    let rt = |e: kplex_service::ClientError| CliError::Runtime(e.to_string());
    let mut client = Client::connect(addr.as_str()).map_err(rt)?;
    if let Some(token) = &token {
        // Tenancy-enabled servers require AUTH before SUBMIT; the reply
        // names the principal, never the token.
        let who = client.auth(token).map_err(rt)?;
        eprintln!(
            "# authenticated as {}",
            who.get("principal").map(String::as_str).unwrap_or("?")
        );
    }
    let id = client.submit(&submit).map_err(rt)?;
    eprintln!("# submitted job {id} to {addr}");
    let start = Instant::now();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut streamed = 0u64;
    let mut write_failed = false;
    let end = client
        .stream(id, |_seq, plex| {
            streamed += 1;
            if !count_only && !write_failed {
                let line = plex
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                write_failed = writeln!(out, "{line}").is_err();
            }
        })
        .map_err(rt)?;
    out.flush().map_err(|e| CliError::Runtime(e.to_string()))?;
    if write_failed {
        return Err(CliError::Runtime("failed writing results to stdout".into()));
    }
    if count_only {
        println!("{streamed}");
    }
    let state = end.get("state").map(String::as_str).unwrap_or("?");
    eprintln!(
        "# job {id} {state}: {streamed} plexes in {:.3}s",
        start.elapsed().as_secs_f64()
    );
    match state {
        "done" => Ok(()),
        other => Err(CliError::Runtime(format!("job {id} ended {other}"))),
    }
}

/// `kplex auth check --addr … --token …`: authenticates one connection and
/// prints the principal the server resolves the token to — an operator's
/// credential sanity check that never submits work.
fn cmd_auth(args: &Args) -> Result<(), CliError> {
    match args.positional().get(1).map(String::as_str) {
        Some("check") => {}
        other => return Err(usage(format!("unknown auth subcommand {other:?} (check)"))),
    }
    let addr: String = args.require("addr").map_err(usage)?;
    let token: String = args.require("token").map_err(usage)?;
    args.reject_unknown().map_err(usage)?;
    let rt = |e: kplex_service::ClientError| CliError::Runtime(e.to_string());
    let mut client = Client::connect(addr.as_str()).map_err(rt)?;
    let who = client.auth(&token).map_err(rt)?;
    println!(
        "principal={} weight={} admin={}",
        who.get("principal").map(String::as_str).unwrap_or("?"),
        who.get("weight").map(String::as_str).unwrap_or("?"),
        who.get("admin").map(String::as_str).unwrap_or("?"),
    );
    Ok(())
}

fn cmd_datasets(args: &Args) -> Result<(), CliError> {
    args.reject_unknown().map_err(usage)?;
    println!(
        "{:<14} {:<7} {:>22} {:>14}  family",
        "name", "class", "paper (n, m)", "stand-in n"
    );
    for d in all_datasets() {
        let g = d.load();
        println!(
            "{:<14} {:<7} {:>10} {:>11} {:>14}  {}",
            d.name,
            format!("{:?}", d.class),
            d.paper.n,
            d.paper.m,
            g.num_vertices(),
            d.family
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<(), CliError> {
        dispatch(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn is_usage(r: Result<(), CliError>) -> bool {
        matches!(r, Err(CliError::Usage(_)))
    }

    #[test]
    fn help_succeeds() {
        run(&["help"]).unwrap();
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        assert!(is_usage(run(&["frobnicate"])));
    }

    #[test]
    fn enumerate_requires_k_and_q() {
        assert!(is_usage(run(&["enumerate", "--dataset", "jazz"])));
    }

    #[test]
    fn enumerate_rejects_bad_params() {
        assert!(is_usage(run(&[
            "enumerate",
            "--dataset",
            "jazz",
            "--k",
            "3",
            "--q",
            "2"
        ])));
        assert!(is_usage(run(&[
            "enumerate",
            "--dataset",
            "nope",
            "--k",
            "2",
            "--q",
            "4"
        ])));
        assert!(is_usage(run(&[
            "enumerate",
            "--dataset",
            "jazz",
            "--k",
            "2",
            "--q",
            "4",
            "--algo",
            "bogus"
        ])));
    }

    #[test]
    fn exit_codes_distinguish_usage_from_runtime() {
        // Usage error: malformed invocation → exit code 2.
        let e = run(&["enumerate", "--dataset", "jazz"]).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        // Runtime error: well-formed invocation, missing file → exit code 1.
        let e = run(&[
            "enumerate",
            "--k",
            "2",
            "--q",
            "4",
            "--input",
            "/no/such/file.txt",
        ])
        .unwrap_err();
        assert_eq!(e.exit_code(), 1);
        // Submitting to a server that is not there is a runtime failure too.
        let e = run(&[
            "submit",
            "--addr",
            "127.0.0.1:1",
            "--dataset",
            "jazz",
            "--k",
            "2",
            "--q",
            "9",
        ])
        .unwrap_err();
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn submit_validates_arguments_before_connecting() {
        // No --addr, no source, bad params: all usage errors (exit 2),
        // detected without any server running.
        assert!(is_usage(run(&[
            "submit",
            "--dataset",
            "jazz",
            "--k",
            "2",
            "--q",
            "9"
        ])));
        assert!(is_usage(run(&[
            "submit", "--addr", "x:1", "--k", "2", "--q", "9"
        ])));
        assert!(is_usage(run(&[
            "submit",
            "--addr",
            "x:1",
            "--dataset",
            "jazz",
            "--k",
            "3",
            "--q",
            "2"
        ])));
    }

    #[test]
    fn submit_streams_from_a_live_server() {
        // End-to-end over loopback: in-process server, submit with
        // --threads, count-only output.
        let handle = kplex_service::Server::bind(&kplex_service::ServerConfig {
            addr: "127.0.0.1:0".into(),
            runners: 1,
            queue_cap: 4,
            cache_cap: 2,
            default_threads: 1,
            ..kplex_service::ServerConfig::default()
        })
        .expect("bind")
        .spawn()
        .expect("spawn");
        let addr = handle.addr().to_string();
        run(&[
            "submit",
            "--addr",
            &addr,
            "--dataset",
            "jazz",
            "--k",
            "2",
            "--q",
            "9",
            "--threads",
            "2",
            "--count-only",
        ])
        .expect("submit against live server");
        handle.shutdown();
    }

    #[test]
    fn route_requires_backends() {
        assert!(is_usage(run(&["route"])));
        assert!(is_usage(run(&["route", "--addr", "127.0.0.1:0"])));
    }

    #[test]
    fn submit_streams_through_a_router() {
        // Full path: kplexd backend behind a kplexr router, submitted to via
        // the CLI — all on ephemeral ports.
        let backend = kplex_service::Server::bind(&kplex_service::ServerConfig {
            addr: "127.0.0.1:0".into(),
            runners: 1,
            queue_cap: 4,
            cache_cap: 2,
            default_threads: 1,
            ..kplex_service::ServerConfig::default()
        })
        .expect("bind backend")
        .spawn()
        .expect("spawn backend");
        let router = kplex_service::Router::bind(&kplex_service::RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: vec![backend.addr().to_string()],
            ..kplex_service::RouterConfig::default()
        })
        .expect("bind router")
        .spawn()
        .expect("spawn router");
        let addr = router.addr().to_string();
        run(&[
            "submit",
            "--addr",
            &addr,
            "--dataset",
            "jazz",
            "--k",
            "2",
            "--q",
            "9",
            "--tau-us",
            "50",
            "--count-only",
        ])
        .expect("submit through router");
        router.shutdown();
        backend.shutdown();
    }

    #[test]
    fn enumerate_counts_on_dataset() {
        run(&[
            "enumerate",
            "--dataset",
            "jazz",
            "--k",
            "2",
            "--q",
            "9",
            "--count-only",
        ])
        .unwrap();
    }

    #[test]
    fn maximum_works_on_dataset() {
        run(&["maximum", "--dataset", "jazz", "--k", "2"]).unwrap();
        assert!(run(&["maximum", "--dataset", "jazz"]).is_err());
    }

    #[test]
    fn verify_accepts_engine_output_and_rejects_junk() {
        let dir = std::env::temp_dir().join(format!("kplex-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Produce results for a tiny synthetic file.
        let graph_path = dir.join("g.txt");
        std::fs::write(&graph_path, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n").unwrap();
        let results_path = dir.join("res.txt");
        std::fs::write(&results_path, "0 1 2 3\n").unwrap();
        run(&[
            "verify",
            "--k",
            "2",
            "--q",
            "4",
            "--input",
            graph_path.to_str().unwrap(),
            "--results",
            results_path.to_str().unwrap(),
        ])
        .unwrap();
        // A non-maximal claim must fail.
        std::fs::write(&results_path, "0 1 2\n").unwrap();
        assert!(run(&[
            "verify",
            "--k",
            "2",
            "--q",
            "3",
            "--input",
            graph_path.to_str().unwrap(),
            "--results",
            results_path.to_str().unwrap(),
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_works_on_dataset() {
        run(&["stats", "--dataset", "jazz"]).unwrap();
    }

    #[test]
    fn convert_writes_a_servable_kpx() {
        let dir = std::env::temp_dir().join(format!("kplex-cli-cv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("jazz.kpx");
        run(&[
            "convert",
            "--dataset",
            "jazz",
            "--output",
            out.to_str().unwrap(),
        ])
        .unwrap();
        // The written file must open as an mmap store identical to the CSR.
        let store = kplex_graph::StoreBackend::open_mmap(&out).expect("open converted file");
        let g = kplex_datasets::by_name("jazz").unwrap().load();
        use kplex_graph::GraphStore;
        assert_eq!(store.num_vertices(), g.num_vertices());
        assert_eq!(store.num_edges(), g.num_edges());
        // Missing --output is a usage error; an unwritable path is runtime.
        assert!(is_usage(run(&["convert", "--dataset", "jazz"])));
        assert_eq!(
            run(&[
                "convert",
                "--dataset",
                "jazz",
                "--output",
                "/no/such/dir/x.kpx"
            ])
            .unwrap_err()
            .exit_code(),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submit_rejects_bad_store_locally() {
        // Never touches the network: --store is validated before connecting.
        assert!(is_usage(run(&[
            "submit",
            "--addr",
            "x:1",
            "--dataset",
            "jazz",
            "--k",
            "2",
            "--q",
            "9",
            "--store",
            "ramdisk"
        ])));
        assert!(is_usage(run(&["serve", "--store", "ramdisk"])));
    }

    #[test]
    fn submit_streams_with_compressed_store() {
        let handle = kplex_service::Server::bind(&kplex_service::ServerConfig {
            addr: "127.0.0.1:0".into(),
            runners: 1,
            queue_cap: 4,
            cache_cap: 2,
            default_threads: 1,
            ..kplex_service::ServerConfig::default()
        })
        .expect("bind")
        .spawn()
        .expect("spawn");
        let addr = handle.addr().to_string();
        run(&[
            "submit",
            "--addr",
            &addr,
            "--dataset",
            "jazz",
            "--k",
            "2",
            "--q",
            "9",
            "--store",
            "compressed",
            "--count-only",
        ])
        .expect("submit with --store compressed");
        handle.shutdown();
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(run(&["stats", "--dataset", "jazz", "--wat", "1"]).is_err());
    }
}
