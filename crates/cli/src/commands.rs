//! CLI subcommands.

use crate::args::Args;
use kplex_baselines::Algorithm;
use kplex_core::{CountSink, FnSink, Params, SinkFlow};
use kplex_datasets::all_datasets;
use kplex_graph::{io, CsrGraph, GraphStats};
use kplex_parallel::{par_enumerate_count, EngineOptions};
use std::io::Write;
use std::time::Instant;

const USAGE: &str = "\
kplex — enumeration of large maximal k-plexes (EDBT 2025 reproduction)

USAGE:
  kplex enumerate --k K --q Q (--input FILE | --dataset NAME)
                  [--algo ALGO] [--threads N] [--timeout-us U]
                  [--count-only] [--limit N]
  kplex maximum   --k K [--q-floor Q] (--input FILE | --dataset NAME)
  kplex verify    --k K --q Q --results FILE (--input FILE | --dataset NAME)
  kplex stats     (--input FILE | --dataset NAME)
  kplex generate  --dataset NAME --output FILE
  kplex datasets
  kplex help

OPTIONS:
  --k K            plex slack (every member may miss up to k links)
  --q Q            minimum plex size (requires q >= 2k-1)
  --input FILE     graph file (see --format)
  --format FMT     edges (default) | dimacs | metis
  --dataset NAME   one of the built-in Table 2 stand-ins (see `kplex datasets`)
  --algo ALGO      ours | ours_p | ours-ub | ours-ub+fp | basic | basic+r1 |
                   basic+r2 | listplex | fp          (default: ours)
  --threads N      parallel engine with N workers    (default: sequential)
  --timeout-us U   straggler timeout in microseconds (default: 100)
  --count-only     print only the number of k-plexes
  --limit N        stop after N results
";

/// Entry point shared with the binary's `main`.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    let cmd = args
        .positional()
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    match cmd {
        "enumerate" => cmd_enumerate(&args),
        "maximum" => cmd_maximum(&args),
        "verify" => cmd_verify(&args),
        "stats" => cmd_stats(&args),
        "generate" => cmd_generate(&args),
        "datasets" => cmd_datasets(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn load_graph(args: &Args) -> Result<(CsrGraph, String), String> {
    let format = args.get("format").unwrap_or("edges").to_string();
    match (args.get("input"), args.get("dataset")) {
        (Some(path), None) => {
            let g = match format.as_str() {
                "edges" => io::read_edge_list(path).map_err(|e| e.to_string())?.0,
                "dimacs" => {
                    let f = std::fs::File::open(path).map_err(|e| e.to_string())?;
                    kplex_graph::io_formats::parse_dimacs(f).map_err(|e| e.to_string())?
                }
                "metis" => {
                    let f = std::fs::File::open(path).map_err(|e| e.to_string())?;
                    kplex_graph::io_formats::parse_metis(f).map_err(|e| e.to_string())?
                }
                other => return Err(format!("unknown --format {other:?} (edges|dimacs|metis)")),
            };
            Ok((g, path.to_string()))
        }
        (None, Some(name)) => {
            let ds = kplex_datasets::by_name(name)
                .ok_or_else(|| format!("unknown dataset {name:?} (try `kplex datasets`)"))?;
            Ok((ds.load(), name.to_string()))
        }
        _ => Err("provide exactly one of --input FILE or --dataset NAME".into()),
    }
}

fn cmd_enumerate(args: &Args) -> Result<(), String> {
    let k: usize = args.require("k")?;
    let q: usize = args.require("q")?;
    let params = Params::new(k, q).map_err(|e| e.to_string())?;
    let algo_name = args.get("algo").unwrap_or("ours").to_string();
    let algo =
        Algorithm::parse(&algo_name).ok_or_else(|| format!("unknown algorithm {algo_name:?}"))?;
    let threads: usize = args.get_parse("threads", 0)?;
    let timeout_us: u64 = args.get_parse("timeout-us", 100)?;
    let count_only = args.flag("count-only");
    let limit: u64 = args.get_parse("limit", u64::MAX)?;
    let (g, source) = load_graph(args)?;
    args.reject_unknown()?;

    eprintln!(
        "# {source}: n={} m={} | algo={} k={k} q={q}{}",
        g.num_vertices(),
        g.num_edges(),
        algo.name(),
        if threads > 0 {
            format!(" threads={threads}")
        } else {
            String::new()
        }
    );
    let start = Instant::now();
    if threads > 0 {
        if !count_only {
            return Err("parallel mode currently supports --count-only output".into());
        }
        let mut opts = EngineOptions::with_threads(threads);
        opts.timeout = (timeout_us > 0).then(|| std::time::Duration::from_micros(timeout_us));
        if algo == Algorithm::Fp {
            opts.serial_construction = true;
            opts.single_task_per_seed = true;
            opts.timeout = None;
        } else if algo == Algorithm::ListPlex {
            opts.timeout = None;
        }
        let (count, stats) = par_enumerate_count(&g, params, &algo.config(), &opts);
        println!("{count}");
        eprintln!(
            "# {} in {:.3}s | {stats}",
            count,
            start.elapsed().as_secs_f64()
        );
        return Ok(());
    }
    if count_only {
        let mut sink = CountSink::default();
        let stats = algo.run(&g, params, &mut sink);
        println!("{}", sink.count);
        eprintln!(
            "# {} maximal {k}-plexes (q={q}) in {:.3}s | {stats}",
            sink.count,
            start.elapsed().as_secs_f64()
        );
    } else {
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        let mut printed = 0u64;
        let mut failed = false;
        {
            let mut sink = FnSink(|vs: &[u32]| {
                let line = vs
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                if writeln!(out, "{line}").is_err() {
                    failed = true;
                    return SinkFlow::Stop;
                }
                printed += 1;
                if printed >= limit {
                    SinkFlow::Stop
                } else {
                    SinkFlow::Continue
                }
            });
            let stats = algo.run(&g, params, &mut sink);
            eprintln!(
                "# {} maximal {k}-plexes (q={q}) in {:.3}s | {stats}",
                stats.outputs,
                start.elapsed().as_secs_f64()
            );
        }
        out.flush().map_err(|e| e.to_string())?;
        if failed {
            return Err("failed writing results to stdout".into());
        }
    }
    Ok(())
}

fn cmd_maximum(args: &Args) -> Result<(), String> {
    let k: usize = args.require("k")?;
    let q_floor: usize = args.get_parse("q-floor", 2 * k.max(1) - 1)?;
    let (g, source) = load_graph(args)?;
    args.reject_unknown()?;
    let start = Instant::now();
    let result = kplex_core::maximum_kplex(&g, k, q_floor, &kplex_core::AlgoConfig::ours());
    match &result.plex {
        Some(p) => {
            let line = p
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            println!("{line}");
            eprintln!(
                "# maximum {k}-plex of {source} has {} vertices (floor q={q_floor}) in {:.3}s | {}",
                p.len(),
                start.elapsed().as_secs_f64(),
                result.stats
            );
        }
        None => {
            eprintln!(
                "# no {k}-plex with >= {q_floor} vertices in {source} ({:.3}s)",
                start.elapsed().as_secs_f64()
            );
        }
    }
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let k: usize = args.require("k")?;
    let q: usize = args.require("q")?;
    let results_path: String = args.require("results")?;
    let (g, source) = load_graph(args)?;
    args.reject_unknown()?;
    // One plex per line, whitespace-separated vertex ids.
    let text = std::fs::read_to_string(&results_path).map_err(|e| e.to_string())?;
    let mut results: Vec<Vec<u32>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut set = Vec::new();
        for tok in line.split_whitespace() {
            let v: u32 = tok
                .parse()
                .map_err(|e| format!("{results_path}:{}: bad vertex id: {e}", lineno + 1))?;
            set.push(v);
        }
        results.push(set);
    }
    let violations = if g.num_vertices() <= 200 {
        kplex_core::verify_complete(&g, k, q, &results)
    } else {
        kplex_core::verify_results(&g, k, q, &results)
    };
    if violations.is_empty() {
        println!(
            "OK: {} result(s) verified against {source} (k={k}, q={q})",
            results.len()
        );
        Ok(())
    } else {
        for v in violations.iter().take(20) {
            eprintln!("violation: {v}");
        }
        Err(format!("{} violation(s) found", violations.len()))
    }
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let (g, source) = load_graph(args)?;
    args.reject_unknown()?;
    let s = GraphStats::compute(&g);
    println!("{source}: {s}");
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let name = args
        .get("dataset")
        .ok_or("generate requires --dataset NAME")?
        .to_string();
    let output = args
        .get("output")
        .ok_or("generate requires --output FILE")?
        .to_string();
    args.reject_unknown()?;
    let ds = kplex_datasets::by_name(&name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let g = ds.load();
    let f = std::fs::File::create(&output).map_err(|e| e.to_string())?;
    io::write_edge_list(&g, f).map_err(|e| e.to_string())?;
    eprintln!(
        "# wrote {} ({} vertices, {} edges)",
        output,
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_datasets(args: &Args) -> Result<(), String> {
    args.reject_unknown()?;
    println!(
        "{:<14} {:<7} {:>22} {:>14}  family",
        "name", "class", "paper (n, m)", "stand-in n"
    );
    for d in all_datasets() {
        let g = d.load();
        println!(
            "{:<14} {:<7} {:>10} {:>11} {:>14}  {}",
            d.name,
            format!("{:?}", d.class),
            d.paper.n,
            d.paper.m,
            g.num_vertices(),
            d.family
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<(), String> {
        dispatch(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_succeeds() {
        run(&["help"]).unwrap();
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn enumerate_requires_k_and_q() {
        assert!(run(&["enumerate", "--dataset", "jazz"]).is_err());
    }

    #[test]
    fn enumerate_rejects_bad_params() {
        assert!(run(&["enumerate", "--dataset", "jazz", "--k", "3", "--q", "2"]).is_err());
        assert!(run(&["enumerate", "--dataset", "nope", "--k", "2", "--q", "4"]).is_err());
        assert!(run(&[
            "enumerate",
            "--dataset",
            "jazz",
            "--k",
            "2",
            "--q",
            "4",
            "--algo",
            "bogus"
        ])
        .is_err());
    }

    #[test]
    fn enumerate_counts_on_dataset() {
        run(&[
            "enumerate",
            "--dataset",
            "jazz",
            "--k",
            "2",
            "--q",
            "9",
            "--count-only",
        ])
        .unwrap();
    }

    #[test]
    fn maximum_works_on_dataset() {
        run(&["maximum", "--dataset", "jazz", "--k", "2"]).unwrap();
        assert!(run(&["maximum", "--dataset", "jazz"]).is_err());
    }

    #[test]
    fn verify_accepts_engine_output_and_rejects_junk() {
        let dir = std::env::temp_dir().join(format!("kplex-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Produce results for a tiny synthetic file.
        let graph_path = dir.join("g.txt");
        std::fs::write(&graph_path, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n").unwrap();
        let results_path = dir.join("res.txt");
        std::fs::write(&results_path, "0 1 2 3\n").unwrap();
        run(&[
            "verify",
            "--k",
            "2",
            "--q",
            "4",
            "--input",
            graph_path.to_str().unwrap(),
            "--results",
            results_path.to_str().unwrap(),
        ])
        .unwrap();
        // A non-maximal claim must fail.
        std::fs::write(&results_path, "0 1 2\n").unwrap();
        assert!(run(&[
            "verify",
            "--k",
            "2",
            "--q",
            "3",
            "--input",
            graph_path.to_str().unwrap(),
            "--results",
            results_path.to_str().unwrap(),
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_works_on_dataset() {
        run(&["stats", "--dataset", "jazz"]).unwrap();
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(run(&["stats", "--dataset", "jazz", "--wat", "1"]).is_err());
    }
}
