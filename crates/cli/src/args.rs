//! Minimal hand-rolled argument parser: `--flag`, `--key value` and
//! positionals, with typed accessors and unknown-flag detection.

use std::collections::BTreeMap;

/// Parsed command line: positionals plus `--key [value]` options.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, Vec<String>>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Splits `argv` into positionals and options. A token starting with
    /// `--` consumes the next token as its value unless that token is itself
    /// an option or missing (then it is a boolean flag).
    pub fn parse(argv: &[String]) -> Args {
        let mut a = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            if let Some(key) = tok.strip_prefix("--") {
                let takes_value = i + 1 < argv.len() && !argv[i + 1].starts_with("--");
                let entry = a.options.entry(key.to_string()).or_default();
                if takes_value {
                    entry.push(argv[i + 1].clone());
                    i += 2;
                } else {
                    entry.push(String::new());
                    i += 1;
                }
            } else {
                a.positional.push(tok.clone());
                i += 1;
            }
        }
        a
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Every occurrence of a repeatable option, in order (empty when the
    /// option is absent; bare-flag occurrences contribute empty strings and
    /// are filtered out).
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.consumed.borrow_mut().push(key.to_string());
        self.options
            .get(key)
            .map(|v| {
                v.iter()
                    .map(String::as_str)
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// String option (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(key.to_string());
        self.options
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
            .filter(|s| !s.is_empty())
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.consumed.borrow_mut().push(key.to_string());
        self.options.contains_key(key)
    }

    /// Typed option with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {s:?}")),
        }
    }

    /// Required typed option.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let s = self
            .get(key)
            .ok_or_else(|| format!("missing required option --{key}"))?;
        s.parse()
            .map_err(|_| format!("invalid value for --{key}: {s:?}"))
    }

    /// Errors on any option that no accessor asked about (typo protection).
    pub fn reject_unknown(&self) -> Result<(), String> {
        let seen = self.consumed.borrow();
        for key in self.options.keys() {
            if !seen.iter().any(|s| s == key) {
                return Err(format!("unknown option --{key}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_positionals_and_options() {
        let a = args(&["enumerate", "--k", "2", "--count-only", "--q", "12"]);
        assert_eq!(a.positional(), &["enumerate"]);
        assert_eq!(a.get("k"), Some("2"));
        assert!(a.flag("count-only"));
        assert_eq!(a.require::<usize>("q").unwrap(), 12);
    }

    #[test]
    fn typed_defaults_and_errors() {
        let a = args(&["--threads", "abc"]);
        assert!(a.get_parse::<usize>("threads", 1).is_err());
        let a = args(&[]);
        assert_eq!(a.get_parse::<usize>("threads", 4).unwrap(), 4);
        assert!(a.require::<usize>("k").is_err());
    }

    #[test]
    fn repeatable_options_collect_in_order() {
        let a = args(&["route", "--backend", "h1:1", "--backend", "h2:2"]);
        assert_eq!(a.get_all("backend"), vec!["h1:1", "h2:2"]);
        assert!(a.reject_unknown().is_ok());
        let a = args(&[]);
        assert!(a.get_all("backend").is_empty());
    }

    #[test]
    fn unknown_options_detected() {
        let a = args(&["--k", "2", "--bogus", "1"]);
        let _ = a.get("k");
        assert!(a.reject_unknown().is_err());
        let _ = a.get("bogus");
        assert!(a.reject_unknown().is_ok());
    }
}
