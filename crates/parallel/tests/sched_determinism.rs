//! Deterministic scheduler harness tests.
//!
//! The `SchedHook` seam reports, from the worker threads themselves, when a
//! worker is *committed* to parking (bit set, final re-check done, `park()`
//! next). That lets these tests construct the exact interleavings the old
//! sleep-poll engine papered over — all-parked + inject (lost wakeup),
//! park/inject churn (push-vs-park race), stop with sleepers (termination
//! handshake) — instead of hoping a stress run stumbles into them.
//!
//! Coordination here uses channels and atomics only: the raw-sync lint
//! bans `Mutex`/`Condvar` in this crate, tests included.

use kplex_core::{AlgoConfig, ChannelSink, Params, PlexSink, SinkFlow};
use kplex_graph::{gen, VertexId};
use kplex_parallel::sched::{SchedConfig, SchedEvent, SchedHook, SchedMetrics, Scheduler};
use kplex_parallel::{run_parallel, EngineOptions};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Spin-waits (yielding) until `cond` holds, panicking after `budget`.
/// The budget is the test's liveness assertion: a lost wakeup turns into
/// this panic instead of a hung CI job.
fn wait_until(budget: Duration, what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < budget, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// A hook that counts `Parking` events and forwards them to a channel.
fn parking_hook() -> (SchedHook, mpsc::Receiver<usize>, Arc<AtomicUsize>) {
    let (tx, rx) = mpsc::channel();
    let parks = Arc::new(AtomicUsize::new(0));
    let parks_in_hook = parks.clone();
    let hook: SchedHook = Arc::new(move |ev| {
        if let SchedEvent::Parking(w) = ev {
            // ordering: event counter read by the orchestrator's spin
            // waits; no ordering against other memory is needed.
            parks_in_hook.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(w);
        }
    });
    (hook, rx, parks)
}

/// Lost-wakeup regression: park every worker, inject one task, and require
/// a worker to unpark and run it within a bounded wall-clock budget. Under
/// the old sleep-poll engine this property held only because sleepers
/// re-polled every 50µs; under park/unpark it holds only if the
/// push→fence→scan / set-bit→fence→re-find protocol has no hole — a lost
/// wakeup hangs the injected task until the timeout panic.
#[test]
fn parked_workers_wake_on_inject_within_budget() {
    const WORKERS: usize = 2;
    let (hook, park_rx, _parks) = parking_hook();
    let (sched, ctxs) = Scheduler::<u32>::new(SchedConfig {
        workers: WORKERS,
        pin: false,
        hook: Some(hook),
        metrics: None,
    });
    // The orchestrator holds one pending token so the pool cannot
    // terminate while we line the workers up.
    sched.count_in(1);
    let ran = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for ctx in ctxs {
            let sched = &sched;
            let ran = &ran;
            scope.spawn(move || {
                let h = ctx.attach(sched);
                while let Some(_task) = h.next() {
                    // ordering: test counter; the orchestrator spin-reads
                    // it and the final assert runs after join.
                    ran.fetch_add(1, Ordering::Relaxed);
                    h.count_out();
                }
            });
        }
        // Both workers committed to parking.
        for _ in 0..WORKERS {
            park_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("workers never parked");
        }
        sched.inject(42);
        wait_until(Duration::from_secs(2), "injected task to run", || {
            // ordering: spin-read of the test counter.
            ran.load(Ordering::Relaxed) == 1
        });
        // Release the orchestration token: pending hits 0, everyone exits.
        sched.count_out();
    });
    assert_eq!(sched.pending(), 0);
}

/// Stress variant: 10k rounds of wait-for-park → inject → wait-for-run on
/// a single worker. Every round re-crosses the push-vs-park race window
/// from a different phase of the worker's idle loop; one lost wakeup
/// anywhere in 10k rounds fails the round's bounded wait.
#[test]
fn park_inject_stress_10k_rounds() {
    const ROUNDS: usize = 10_000;
    let parks = Arc::new(AtomicUsize::new(0));
    let parks_in_hook = parks.clone();
    let hook: SchedHook = Arc::new(move |ev| {
        if let SchedEvent::Parking(_) = ev {
            // ordering: event counter for the orchestrator's spin waits.
            parks_in_hook.fetch_add(1, Ordering::Relaxed);
        }
    });
    let (sched, ctxs) = Scheduler::<usize>::new(SchedConfig {
        workers: 1,
        pin: false,
        hook: Some(hook),
        metrics: None,
    });
    sched.count_in(1); // orchestration token
    let ran = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for ctx in ctxs {
            let sched = &sched;
            let ran = &ran;
            scope.spawn(move || {
                let h = ctx.attach(sched);
                while let Some(_task) = h.next() {
                    // ordering: test counter, spin-read by the orchestrator.
                    ran.fetch_add(1, Ordering::Relaxed);
                    h.count_out();
                }
            });
        }
        for round in 0..ROUNDS {
            // The worker has committed to parking at least once more than
            // the tasks it has run — i.e. it is parked (or about to be,
            // with its bit set, which the wake protocol treats the same).
            wait_until(Duration::from_secs(10), "worker to park", || {
                // ordering: spin-read of the hook's event counter.
                parks.load(Ordering::Relaxed) > round
            });
            sched.inject(round);
            wait_until(Duration::from_secs(2), "round's task to run", || {
                // ordering: spin-read of the test counter.
                ran.load(Ordering::Relaxed) == round + 1
            });
        }
        sched.count_out();
    });
    // ordering: workers joined; plain readback.
    assert_eq!(ran.load(Ordering::Relaxed), ROUNDS);
    assert_eq!(sched.pending(), 0);
}

/// Termination handshake with sleepers: park all workers, then feed them
/// a drain-only workload (the engine's stop path: count tasks out without
/// running them). The last count-out must wake every parked worker so the
/// pool quiesces; nobody may sleep past termination.
#[test]
fn stop_drain_wakes_all_parked_workers() {
    const WORKERS: usize = 3;
    let (hook, park_rx, _parks) = parking_hook();
    let (sched, ctxs) = Scheduler::<u32>::new(SchedConfig {
        workers: WORKERS,
        pin: false,
        hook: Some(hook),
        metrics: None,
    });
    sched.count_in(1); // orchestration token
    let stop = AtomicBool::new(true); // raised before any task exists
    let drained = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for ctx in ctxs {
            let sched = &sched;
            let stop = &stop;
            let drained = &drained;
            scope.spawn(move || {
                let h = ctx.attach(sched);
                while let Some(_task) = h.next() {
                    // Engine stop path: drain without running.
                    if stop.load(Ordering::Acquire) {
                        // ordering: test counter read after join.
                        drained.fetch_add(1, Ordering::Relaxed);
                        h.count_out();
                        continue;
                    }
                    unreachable!("stop was raised before any inject");
                }
            });
        }
        for _ in 0..WORKERS {
            park_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("workers never parked");
        }
        // A burst of cancelled work plus the token release: everyone must
        // wake, drain, observe pending == 0, and exit — bounded by the
        // scope join itself (a sleeper would hang it).
        for i in 0..32 {
            sched.inject(i);
        }
        sched.count_out();
    });
    // ordering: workers joined; plain readback.
    assert_eq!(drained.load(Ordering::Relaxed), 32);
    assert_eq!(sched.pending(), 0);
}

/// A sink that paces each report, keeping the engine run alive long
/// enough for the orchestrator to act mid-run.
struct PacedSink {
    inner: ChannelSink,
    pace: Duration,
}

impl PlexSink for PacedSink {
    fn report(&mut self, vertices: &[VertexId]) -> SinkFlow {
        std::thread::sleep(self.pace);
        self.inner.report(vertices)
    }
}

/// Cancellation latency, end to end through the engine: with some workers
/// parked mid-run (more threads than heavy seeds), raise the job stop
/// flag and require the whole pool — busy *and* parked workers — to
/// quiesce within a bounded budget. Pins that the idle path re-checks
/// termination rather than re-parking into a sleep no one will end, and
/// that the stop drain counts queued tasks out exactly.
#[test]
fn engine_cancellation_with_parked_workers_quiesces_promptly() {
    // Few heavy seeds + 8 threads: the surplus workers park mid-run.
    let bg = gen::gnm(150, 1100, 17);
    let plant = gen::PlantedPlexConfig {
        count: 3,
        size_lo: 12,
        size_hi: 14,
        missing: 1,
        overlap: true,
    };
    let (g, _) = gen::planted_plexes(&bg, &plant, 23);
    let params = Params::new(2, 8).unwrap();
    let cfg = AlgoConfig::ours();

    let (hook, park_rx, _parks) = parking_hook();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_main = stop.clone();
    let metrics = Arc::new(SchedMetrics::default());
    let mut opts = EngineOptions::with_threads(8);
    opts.timeout = None; // whole-subtree tasks: the stop must land inside one
    opts.stop_flag = Some(stop.clone());
    opts.sched_hook = Some(hook);
    opts.metrics = Some(metrics.clone());

    let (result_tx, result_rx) = mpsc::channel::<Vec<VertexId>>();
    let pace = Duration::from_millis(5);
    let (done_tx, done_rx) = mpsc::channel();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let _ = run_parallel(&g, params, &cfg, &opts, || PacedSink {
                inner: ChannelSink::new(result_tx.clone(), stop.clone()),
                pace,
            });
            let _ = done_tx.send(Instant::now());
        });
        // Mid-run: at least one worker parked and at least one result out
        // (so the paced heavy subtrees are demonstrably still running).
        park_rx
            .recv_timeout(Duration::from_secs(20))
            .expect("no worker ever parked mid-run");
        result_rx
            .recv_timeout(Duration::from_secs(20))
            .expect("no result before cancellation");
        let raised_at = Instant::now();
        stop_main.store(true, Ordering::Release);
        let finished_at = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("engine never quiesced after stop");
        let latency = finished_at.saturating_duration_since(raised_at);
        assert!(
            latency < Duration::from_secs(5),
            "cancellation took {latency:?}: parked workers were not woken promptly"
        );
    });
    assert_eq!(
        metrics.parks(),
        metrics.unparks(),
        "a worker is still parked"
    );
}
