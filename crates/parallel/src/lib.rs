//! # kplex-parallel
//!
//! Task-based parallel enumeration (Section 6 of the paper).
//!
//! Worker `w` builds every `M`-th eligible seed subgraph and publishes
//! that seed's initial sub-tasks as it goes; all workers concurrently
//! drain through the work-stealing scheduler ([`sched`]): own deque first
//! (cache locality: tasks of one deque share a seed subgraph), then the
//! global injector, then peers — same-socket victims first
//! ([`topology`]). Idle workers park on a token parker and are woken by
//! the next push (at most one wakeup per push); termination is a
//! pending==0 handshake, not timed polling.
//!
//! Straggler elimination: every task carries a time budget `τ_time`; when a
//! task runs past it, the searcher stops recursing and re-packages its
//! pending branches as new tasks ([`kplex_core::SavedTask`]) — published
//! mid-task through the searcher's spawn hook, overflowing to the global
//! injector whenever a peer is parked — so one deep sub-tree cannot
//! serialise the stage tail.
//!
//! ```
//! use kplex_core::{enumerate_count, AlgoConfig, Params};
//! use kplex_graph::gen;
//! use kplex_parallel::{par_enumerate_count, EngineOptions};
//!
//! let g = gen::powerlaw_cluster(100, 4, 0.6, 1);
//! let params = Params::new(2, 5).unwrap();
//! let cfg = AlgoConfig::ours();
//! let (serial, _) = enumerate_count(&g, params, &cfg);
//! let (parallel, _) = par_enumerate_count(&g, params, &cfg, &EngineOptions::with_threads(2));
//! assert_eq!(parallel, serial);
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod sched;
pub mod topology;

pub use engine::{
    par_enumerate_collect, par_enumerate_count, run_parallel, run_parallel_prepared, EngineOptions,
};
pub use sched::{SchedEvent, SchedHook, SchedMetrics};
pub use topology::Topology;
