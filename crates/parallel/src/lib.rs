//! # kplex-parallel
//!
//! Task-based parallel enumeration (Section 6 of the paper).
//!
//! The engine processes seed vertices in *stages*: in stage `j`, the `M`
//! worker threads take the next `M` seed vertices of the degeneracy
//! ordering, each builds its seed subgraph and enqueues that seed's initial
//! sub-tasks into its own work-stealing deque, and then all workers drain
//! the stage — own queue first (cache locality: tasks of one queue share a
//! seed subgraph), stealing from siblings once empty (load balance). Stage
//! memory (seed subgraphs, pair matrices) is released before the next stage
//! begins.
//!
//! Straggler elimination: every task carries a time budget `τ_time`; when a
//! task runs past it, the searcher stops recursing and re-packages its
//! pending branches as new tasks on the worker's queue
//! ([`kplex_core::SavedTask`]), so one deep sub-tree cannot serialise the
//! stage tail.
//!
//! ```
//! use kplex_core::{enumerate_count, AlgoConfig, Params};
//! use kplex_graph::gen;
//! use kplex_parallel::{par_enumerate_count, EngineOptions};
//!
//! let g = gen::powerlaw_cluster(100, 4, 0.6, 1);
//! let params = Params::new(2, 5).unwrap();
//! let cfg = AlgoConfig::ours();
//! let (serial, _) = enumerate_count(&g, params, &cfg);
//! let (parallel, _) = par_enumerate_count(&g, params, &cfg, &EngineOptions::with_threads(2));
//! assert_eq!(parallel, serial);
//! ```

#![deny(missing_docs)]

pub mod engine;

pub use engine::{
    par_enumerate_collect, par_enumerate_count, run_parallel, run_parallel_prepared, EngineOptions,
};
