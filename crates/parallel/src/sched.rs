//! The work-stealing scheduler substrate: global injector, per-worker
//! deques, park/unpark wakeup discipline, and the deterministic test seam.
//!
//! This module owns the *scheduling* half of the engine — where tasks wait
//! and how idle workers sleep — while `engine.rs` owns the *enumeration*
//! half (seeds, searchers, sinks). The topology is crossbeam's: a global
//! [`Injector`] for initial injection and overflow, one [`Deque`] per
//! worker with owner-LIFO pop, and peer [`Stealer`]s consulted in
//! NUMA-aware order ([`Topology::steal_order`]). Idle workers *park* on a
//! token [`Parker`] instead of sleep-polling.
//!
//! ## The wakeup invariant (no lost wakeups)
//!
//! A parking worker and a pushing worker synchronise through two shared
//! objects: the task queues and the `parked` bitmask. The protocol is
//! Dekker-style — each side writes its own signal, fences, then reads the
//! other side's:
//!
//! * **Consumer** (worker going idle): set own bit in `parked` with a
//!   `SeqCst` RMW → re-check termination and *re-run the full find* (own
//!   deque, injector, every peer) → only then park.
//! * **Producer** (worker pushing a task): push → `SeqCst` fence → scan
//!   `parked` → CAS-clear one bit → unpark that worker.
//!
//! In the single total order that `SeqCst` guarantees, either the
//! producer's mask scan observes the consumer's bit (and unparks it), or
//! the consumer's re-find observes the push (and never parks). The parker
//! token banks an unpark delivered in the window between the re-check and
//! the actual `park()`, closing the last race. This argument only uses the
//! fence/RMW total order plus the deque's own push→steal visibility, so it
//! survives swapping the mutex-based shim for lock-free crossbeam.
//!
//! **WakeAtMostNThreads**: each push wakes at most one parked peer (the
//! CAS-clear hands out each sleeping worker once), so a worker publishing
//! N children wakes at most N peers — no thundering herd, and no wakeup
//! deficit either, because each woken worker steals before it can re-park.
//!
//! ## The termination handshake
//!
//! `pending` counts tasks that exist anywhere (queued or running) plus any
//! outstanding *construction tokens* (workers still building seeds, who may
//! yet push tasks). Invariants, all on this one atomic:
//!
//! * a task is counted in (`count_in`) before it is pushed, so it is
//!   counted before it can be observed;
//! * a task's children are counted in before the parent counts out
//!   (`count_out`), and RMW coherence keeps one thread's operations on one
//!   atomic in program order within the modification order — so `pending`
//!   reaches 0 only after every transitively spawned task is in and out.
//!
//! The *last* `count_out` (the decrement that hits 0) wakes every parked
//! worker; a worker observing `pending == 0` after setting its parked bit
//! exits instead of parking. Together: no worker sleeps past termination,
//! and no worker exits while work can still appear.

use crate::topology::{pin_current_thread, Topology};
use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use crossbeam::sync::{Parker, Unparker};
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Scheduler lifecycle events, delivered to the [`SchedHook`] test seam
/// from the worker thread the event happens on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedEvent {
    /// Worker `wid` attached to the pool (after any CPU pinning).
    Registered(usize),
    /// Worker `wid` is committed to parking: its parked bit is set, the
    /// final re-check found nothing, and `park()` is the next call. An
    /// injection from here on is guaranteed to wake somebody.
    Parking(usize),
    /// Worker `wid` returned from `park()`.
    Unparked(usize),
    /// Worker `wid` observed termination and is leaving the pool.
    Exiting(usize),
}

/// Test-only observation seam, the scheduler analogue of
/// `ServerConfig::cold_load_hook`: a callback invoked at the
/// [`SchedEvent`] points, *on the worker thread*. Deterministic harness
/// tests use it to know when workers are parked and to freeze/step them
/// (by blocking inside the callback) so races like lost-wakeup and
/// park-vs-push can be provoked on purpose instead of waited for.
/// Production runs leave it `None`; the events are not a public API.
pub type SchedHook = Arc<dyn Fn(SchedEvent) + Send + Sync>;

/// Monotonic scheduler counters, shared across jobs when the caller keeps
/// the `Arc` (the service aggregates one per process; the bench sweep
/// reads deltas around each run). All counters are cumulative totals.
#[derive(Debug, Default)]
pub struct SchedMetrics {
    steals: AtomicU64,
    injector_steals: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
}

impl SchedMetrics {
    /// Tasks taken from a *peer's* deque.
    pub fn steals(&self) -> u64 {
        // ordering: monotonic counter read for reporting; no ordering
        // relative to other memory is needed.
        self.steals.load(Ordering::Relaxed)
    }

    /// Tasks (batches count once) taken from the global injector.
    pub fn injector_steals(&self) -> u64 {
        // ordering: monotonic counter read for reporting only.
        self.injector_steals.load(Ordering::Relaxed)
    }

    /// Times a worker parked (blocked idle).
    pub fn parks(&self) -> u64 {
        // ordering: monotonic counter read for reporting only.
        self.parks.load(Ordering::Relaxed)
    }

    /// Times a worker returned from park.
    pub fn unparks(&self) -> u64 {
        // ordering: monotonic counter read for reporting only.
        self.unparks.load(Ordering::Relaxed)
    }

    fn bump(counter: &AtomicU64) {
        // ordering: statistics only; the count itself synchronises nothing.
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Configuration for [`Scheduler::new`].
pub struct SchedConfig {
    /// Number of workers `M`.
    pub workers: usize,
    /// Pin worker threads to CPUs per the detected topology. Off by
    /// default: pinning helps a dedicated machine and hurts a shared one.
    pub pin: bool,
    /// Deterministic-test observation seam; `None` in production.
    pub hook: Option<SchedHook>,
    /// Counter sink; `None` counts into a scheduler-private instance.
    pub metrics: Option<Arc<SchedMetrics>>,
}

/// The shared half of the scheduler: everything workers reach through a
/// `&Scheduler` — the injector, peer stealers, the parked mask, `pending`,
/// and the per-worker steal orders. Created once per stage together with
/// the per-worker [`WorkerCtx`]s.
pub struct Scheduler<T> {
    injector: Injector<T>,
    stealers: Vec<Stealer<T>>,
    /// `steal_order[w]` lists every peer of `w` exactly once, same-socket
    /// victims first (see [`Topology::steal_order`]).
    steal_order: Vec<Vec<usize>>,
    unparkers: Vec<Unparker>,
    /// Bit `w` of word `w / 64` is set while worker `w` is parked or
    /// committed to parking. Plain atomics — the raw-sync lint bans locks
    /// in this crate, and the wakeup protocol needs RMW ordering anyway.
    parked: Vec<AtomicU64>,
    /// Queued + running tasks + outstanding construction tokens.
    pending: AtomicUsize,
    hook: Option<SchedHook>,
    metrics: Arc<SchedMetrics>,
}

/// The private half of one worker: its deque, its parker, and its
/// placement. Moved into the worker thread and attached there (so that
/// pinning happens on the right thread, before first-touch allocations).
pub struct WorkerCtx<T> {
    wid: usize,
    deque: Deque<T>,
    parker: Parker,
    cpu: Option<usize>,
}

impl<T> Scheduler<T> {
    /// Builds a scheduler and its `M` worker contexts. Placement comes
    /// from [`Topology::detect`]: worker→CPU assignments (used only when
    /// `cfg.pin`) and socket-aware steal orders (always).
    pub fn new(cfg: SchedConfig) -> (Scheduler<T>, Vec<WorkerCtx<T>>) {
        let m = cfg.workers.max(1);
        let topo = Topology::detect();
        let placement = topo.place(m);
        let steal_order = Topology::steal_order(&placement);
        let deques: Vec<Deque<T>> = (0..m).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let mut unparkers = Vec::with_capacity(m);
        let mut ctxs = Vec::with_capacity(m);
        for (wid, deque) in deques.into_iter().enumerate() {
            let parker = Parker::new();
            unparkers.push(parker.unparker().clone());
            ctxs.push(WorkerCtx {
                wid,
                deque,
                parker,
                cpu: cfg.pin.then(|| placement[wid].id),
            });
        }
        let sched = Scheduler {
            injector: Injector::new(),
            stealers,
            steal_order,
            unparkers,
            parked: (0..m.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            pending: AtomicUsize::new(0),
            hook: cfg.hook,
            metrics: cfg.metrics.unwrap_or_default(),
        };
        (sched, ctxs)
    }

    /// The metrics sink this scheduler counts into.
    pub fn metrics(&self) -> &Arc<SchedMetrics> {
        &self.metrics
    }

    /// Current pending count (tasks + tokens). Exact only once all workers
    /// have exited; a load-balancing/termination hint before that.
    pub fn pending(&self) -> usize {
        // ordering: Acquire so a caller that observes 0 also observes the
        // writes of every task that ran (pairs with count_out's Release).
        self.pending.load(Ordering::Acquire)
    }

    /// Counts `n` units (tasks about to be pushed, or construction tokens)
    /// into `pending`. Must happen before the corresponding push.
    pub fn count_in(&self, n: usize) {
        // ordering: Relaxed suffices — the count-in precedes the matching
        // push in program order and RMW coherence keeps this thread's
        // operations on `pending` ordered, so a task is always counted
        // before any thread can observe it (module invariant above).
        self.pending.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one unit out. The decrement that reaches 0 wakes every
    /// parked worker so they can observe termination and exit.
    pub fn count_out(&self) {
        // ordering: Release so the worker that observes pending == 0 (with
        // Acquire) also observes all writes made by this task; the RMW
        // also keeps children counted in (program order) before the parent
        // counts out.
        if self.pending.fetch_sub(1, Ordering::Release) == 1 {
            self.wake_all();
        }
    }

    /// Injects a task from outside the pool (the dealer, a test, a future
    /// external submitter): counted in, pushed to the global injector, one
    /// parked worker woken.
    pub fn inject(&self, task: T) {
        self.count_in(1);
        self.injector.push(task);
        // ordering: SeqCst fence after the push, before the parked-mask
        // scan — pairs with the consumer's SeqCst bit-set + re-find (see
        // the wakeup invariant in the module docs).
        fence(Ordering::SeqCst);
        self.wake_one();
    }

    /// Wakes at most one parked worker: scan the mask, CAS-clear one bit,
    /// unpark its owner. The CAS hands each sleeper out exactly once, so N
    /// concurrent pushes wake at most (and, while sleepers last, exactly)
    /// N distinct workers.
    fn wake_one(&self) {
        for (word_idx, word) in self.parked.iter().enumerate() {
            // ordering: the scan races with parkers by design; the SeqCst
            // fence before this call already ordered the push against the
            // mask read, so Relaxed loads here only affect which (if any)
            // sleeper is chosen, never correctness.
            let mut cur = word.load(Ordering::Relaxed);
            while cur != 0 {
                let bit = cur & cur.wrapping_neg();
                // ordering: SeqCst RMW (success and failure-load alike) so
                // clearing the bit is in the single total order with the
                // owner's bit-set; a successful clear means this sleeper is
                // ours alone to wake.
                let res = word.compare_exchange(
                    cur,
                    cur & !bit,
                    // ordering: see the compare_exchange comment above.
                    Ordering::SeqCst,
                    // ordering: see the compare_exchange comment above.
                    Ordering::SeqCst,
                );
                match res {
                    Ok(_) => {
                        let wid = word_idx * 64 + bit.trailing_zeros() as usize;
                        self.unparkers[wid].unpark();
                        return;
                    }
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Unparks every worker (termination, or an external stop that wants
    /// prompt quiescence). Bits are left for the owners to clear — each
    /// woken worker re-runs its idle loop and re-decides.
    pub fn wake_all(&self) {
        for u in &self.unparkers {
            u.unpark();
        }
    }

    fn emit(&self, ev: SchedEvent) {
        if let Some(h) = &self.hook {
            h(ev);
        }
    }
}

impl<T> WorkerCtx<T> {
    /// Worker index of this context.
    pub fn wid(&self) -> usize {
        self.wid
    }

    /// Attaches to the scheduler *on the worker thread*: pins the thread
    /// if placement asked for it (so every later allocation is first-touch
    /// local), emits [`SchedEvent::Registered`], and returns the handle
    /// the worker loop drives.
    pub fn attach(self, sched: &Scheduler<T>) -> WorkerHandle<'_, T> {
        if let Some(cpu) = self.cpu {
            // Best-effort: a rejected mask (CPU went offline, cgroup
            // restriction) falls back to the unpinned behaviour.
            pin_current_thread(cpu);
        }
        sched.emit(SchedEvent::Registered(self.wid));
        WorkerHandle { sched, ctx: self }
    }
}

/// One worker's view of the scheduler: find/push/complete, with the park
/// protocol inside [`WorkerHandle::next`]. All methods take `&self`, so a
/// searcher's spawn hook can hold a shared borrow while the worker loop
/// keeps driving the handle.
pub struct WorkerHandle<'s, T> {
    sched: &'s Scheduler<T>,
    ctx: WorkerCtx<T>,
}

impl<'s, T> WorkerHandle<'s, T> {
    /// Worker index of this handle.
    pub fn wid(&self) -> usize {
        self.ctx.wid
    }

    /// The scheduler this handle is attached to.
    pub fn scheduler(&self) -> &'s Scheduler<T> {
        self.sched
    }

    /// One full find sweep: own deque (LIFO, cache-warm), then the global
    /// injector (batched: spare tasks land on the own deque), then every
    /// peer in same-socket-first order.
    fn find(&self) -> Option<T> {
        if let Some(t) = self.ctx.deque.pop() {
            return Some(t);
        }
        loop {
            match self.sched.injector.steal_batch_and_pop(&self.ctx.deque) {
                Steal::Success(t) => {
                    SchedMetrics::bump(&self.sched.metrics.injector_steals);
                    return Some(t);
                }
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        for &victim in &self.sched.steal_order[self.ctx.wid] {
            // Bounded retries per victim: a CAS-contended victim must not
            // pin this thief while other deques sit full; the outer idle
            // loop sweeps again.
            for _ in 0..8 {
                match self.sched.stealers[victim].steal() {
                    Steal::Success(t) => {
                        SchedMetrics::bump(&self.sched.metrics.steals);
                        return Some(t);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    /// Returns the next task to run, parking while there is nothing to do,
    /// or `None` once the stage has terminated (`pending == 0`). The
    /// caller owns the task until it calls [`WorkerHandle::count_out`].
    pub fn next(&self) -> Option<T> {
        loop {
            if let Some(t) = self.find() {
                return Some(t);
            }
            let (word, bit) = self.mask_slot();
            // ordering: SeqCst RMW publishes the parked bit into the single
            // total order before the re-checks below — pairs with the
            // producer's push → SeqCst fence → mask scan (wakeup invariant
            // in the module docs).
            word.fetch_or(bit, Ordering::SeqCst);
            // Re-check termination: the last count_out may have raced past
            // the find above. The bit must be cleared on every exit path.
            // ordering: Acquire pairs with count_out's Release so an
            // observed 0 also carries every finished task's writes.
            if self.sched.pending.load(Ordering::Acquire) == 0 {
                self.clear_parked();
                self.sched.emit(SchedEvent::Exiting(self.ctx.wid));
                return None;
            }
            // Re-find: any push that missed our bit in its mask scan
            // happened before our bit-set in the total order, so its task
            // is visible to this sweep.
            if let Some(t) = self.find() {
                self.clear_parked();
                return Some(t);
            }
            self.sched.emit(SchedEvent::Parking(self.ctx.wid));
            SchedMetrics::bump(&self.sched.metrics.parks);
            self.ctx.parker.park();
            self.clear_parked();
            SchedMetrics::bump(&self.sched.metrics.unparks);
            self.sched.emit(SchedEvent::Unparked(self.ctx.wid));
        }
    }

    /// Publishes one new task from this worker: counted in, pushed on the
    /// own deque (LIFO — children run next, cache-warm), then at most one
    /// parked peer is woken to come steal.
    pub fn push(&self, task: T) {
        self.sched.count_in(1);
        self.ctx.deque.push(task);
        // ordering: SeqCst fence after the push, before the parked-mask
        // scan in wake_one — the producer half of the wakeup invariant.
        fence(Ordering::SeqCst);
        self.sched.wake_one();
    }

    /// Publishes one new task *for the pool* rather than for this worker:
    /// while any peer is parked the task goes to the global injector
    /// (where the woken peer finds it immediately, instead of having to
    /// win a steal against this worker's own pops); otherwise it lands on
    /// the own deque like [`WorkerHandle::push`]. This is the overflow
    /// path the searcher's mid-run spawn hook uses: deferred branches
    /// become pool-wide work the moment anyone is idle.
    pub fn push_overflow(&self, task: T) {
        self.sched.count_in(1);
        if self.any_parked() {
            self.sched.injector.push(task);
        } else {
            self.ctx.deque.push(task);
        }
        // ordering: SeqCst fence after the push, before the parked-mask
        // scan in wake_one — the producer half of the wakeup invariant.
        fence(Ordering::SeqCst);
        self.sched.wake_one();
    }

    /// Counts one task (or construction token) out; see
    /// [`Scheduler::count_out`].
    pub fn count_out(&self) {
        self.sched.count_out();
    }

    /// Whether any worker (possibly this one, mid-idle-loop) has its
    /// parked bit set. A routing hint for [`WorkerHandle::push_overflow`];
    /// correctness never depends on it.
    fn any_parked(&self) -> bool {
        // ordering: hint only — a stale read routes a task to the deque
        // instead of the injector (or vice versa); wake_one's own fencing
        // still guarantees the wakeup itself.
        self.sched
            .parked
            .iter()
            // ordering: routing hint only; see the method comment above.
            .any(|w| w.load(Ordering::Relaxed) != 0)
    }

    fn mask_slot(&self) -> (&AtomicU64, u64) {
        (
            &self.sched.parked[self.ctx.wid / 64],
            1u64 << (self.ctx.wid % 64),
        )
    }

    /// Clears the own parked bit (idempotent — a producer's CAS may have
    /// cleared it already while handing out the wakeup).
    fn clear_parked(&self) {
        let (word, bit) = self.mask_slot();
        // ordering: SeqCst RMW keeps the clear in the same total order as
        // the set and the producers' CAS — the owner's next bit-set must
        // not be reorderable ahead of this clear.
        word.fetch_and(!bit, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    fn config(workers: usize) -> SchedConfig {
        SchedConfig {
            workers,
            pin: false,
            hook: None,
            metrics: None,
        }
    }

    #[test]
    fn drains_injected_tasks_to_termination() {
        let (sched, ctxs) = Scheduler::<u32>::new(config(3));
        for i in 0..100 {
            sched.inject(i);
        }
        let ran = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for ctx in ctxs {
                let sched = &sched;
                let ran = &ran;
                scope.spawn(move || {
                    let h = ctx.attach(sched);
                    while let Some(_t) = h.next() {
                        // ordering: test counter; assertions run after join.
                        ran.fetch_add(1, Ordering::Relaxed);
                        h.count_out();
                    }
                });
            }
        });
        // ordering: read after the scope joined every worker.
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn children_pushed_mid_task_all_run() {
        // Each injected root spawns a binary tree of depth 6 through the
        // worker push path: 2^7 - 1 tasks per root.
        let (sched, ctxs) = Scheduler::<u32>::new(config(4));
        for _ in 0..8 {
            sched.inject(0);
        }
        let ran = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for ctx in ctxs {
                let sched = &sched;
                let ran = &ran;
                scope.spawn(move || {
                    let h = ctx.attach(sched);
                    while let Some(depth) = h.next() {
                        // ordering: test counter; assertions run after join.
                        ran.fetch_add(1, Ordering::Relaxed);
                        if depth < 6 {
                            h.push(depth + 1);
                            h.push_overflow(depth + 1);
                        }
                        h.count_out();
                    }
                });
            }
        });
        // ordering: read after the scope joined every worker.
        assert_eq!(ran.load(Ordering::Relaxed), 8 * 127);
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn hook_sees_lifecycle_in_order_per_worker() {
        let (tx, rx) = mpsc::channel();
        let hook: SchedHook = Arc::new(move |ev| {
            let _ = tx.send(ev);
        });
        let (sched, ctxs) = Scheduler::<u32>::new(SchedConfig {
            workers: 1,
            pin: false,
            hook: Some(hook),
            metrics: None,
        });
        sched.inject(7);
        std::thread::scope(|scope| {
            for ctx in ctxs {
                let sched = &sched;
                scope.spawn(move || {
                    let h = ctx.attach(sched);
                    while let Some(_t) = h.next() {
                        h.count_out();
                    }
                });
            }
        });
        let events: Vec<SchedEvent> = rx.try_iter().collect();
        assert_eq!(events.first(), Some(&SchedEvent::Registered(0)));
        assert_eq!(events.last(), Some(&SchedEvent::Exiting(0)));
        // With one task pre-injected the single worker never needs to park.
        assert!(!events.contains(&SchedEvent::Parking(0)));
    }

    #[test]
    fn metrics_count_parks_and_steals() {
        let metrics = Arc::new(SchedMetrics::default());
        let (sched, ctxs) = Scheduler::<u32>::new(SchedConfig {
            workers: 2,
            pin: false,
            hook: None,
            metrics: Some(metrics.clone()),
        });
        for i in 0..50 {
            sched.inject(i);
        }
        std::thread::scope(|scope| {
            for ctx in ctxs {
                let sched = &sched;
                scope.spawn(move || {
                    let h = ctx.attach(sched);
                    while let Some(_t) = h.next() {
                        h.count_out();
                    }
                });
            }
        });
        assert!(metrics.injector_steals() > 0);
        assert_eq!(metrics.parks(), metrics.unparks());
    }

    #[test]
    fn wake_one_hands_each_sleeper_out_once() {
        // Directly exercise the mask handshake: set two bits, wake twice,
        // both bits must clear and both parkers hold a token.
        let (sched, ctxs) = Scheduler::<u32>::new(config(2));
        // ordering: single-threaded test setup; SeqCst to mirror the
        // protocol's real sites.
        sched.parked[0].fetch_or(0b11, Ordering::SeqCst);
        sched.wake_one();
        sched.wake_one();
        // ordering: single-threaded test readback.
        assert_eq!(sched.parked[0].load(Ordering::SeqCst), 0);
        // A third wake with nobody parked is a no-op.
        sched.wake_one();
        for ctx in &ctxs {
            // Banked tokens: park returns immediately instead of hanging.
            ctx.parker.park();
        }
    }
}
