//! The stage-based parallel engine.

use crate::sched::{SchedConfig, SchedHook, SchedMetrics, Scheduler};
use kplex_core::enumerate::{prepare, MapSink};
use kplex_core::{
    collect_subtasks, AlgoConfig, CollectSink, CountSink, PairMatrix, Params, PlexSink, Prepared,
    SavedTask, SearchStats, Searcher, SeedBuilder, SeedGraph, SinkFlow, XOUT_FLAG,
};
use kplex_graph::{GraphStore, VertexId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Knobs of the parallel engine.
#[derive(Clone)]
pub struct EngineOptions {
    /// Number of worker threads `M`.
    pub threads: usize,
    /// Straggler timeout `τ_time`; tasks running longer re-queue their
    /// remaining branches. `None` disables splitting (ListPlex/FP style).
    pub timeout: Option<Duration>,
    /// Build every seed subgraph up-front on one thread before any task
    /// runs — the behaviour of parallel FP that the paper identifies as its
    /// bottleneck. When false (default), construction is part of each stage.
    pub serial_construction: bool,
    /// One task per seed with the full two-hop candidate set (FP's layout)
    /// instead of S-sub-tasks.
    pub single_task_per_seed: bool,
    /// Shared cooperative-cancellation flag. When raised (by any thread —
    /// a service cancelling a job, a deadline, a result cap), workers stop
    /// mid-task: the flag is plumbed into every [`Searcher`] (polled inside
    /// the branch recursion and checked on every report) and consulted
    /// before construction and before each dequeued task. The engine also
    /// raises it itself whenever any worker's sink returns
    /// [`SinkFlow::Stop`], so an early-stopping sink halts *all* workers
    /// promptly rather than one.
    pub stop_flag: Option<Arc<AtomicBool>>,
    /// Pin worker threads to CPUs per the detected topology (socket-fill
    /// placement, see [`crate::topology`]). Off by default: pinning helps
    /// a dedicated machine and hurts a time-shared one.
    pub pin_threads: bool,
    /// Deterministic-scheduler test seam (see [`crate::sched::SchedHook`]);
    /// `None` in production.
    pub sched_hook: Option<SchedHook>,
    /// Scheduler counter sink. The service passes one long-lived instance
    /// so STATS can report cumulative steal/park counts; `None` counts
    /// into a run-private instance that is dropped with the run.
    pub metrics: Option<Arc<SchedMetrics>>,
}

impl EngineOptions {
    /// Default options for `t` threads with the paper's default timeout
    /// (τ_time = 0.1 ms).
    pub fn with_threads(t: usize) -> Self {
        Self {
            threads: t.max(1),
            timeout: Some(Duration::from_micros(100)),
            serial_construction: false,
            single_task_per_seed: false,
            stop_flag: None,
            pin_threads: false,
            sched_hook: None,
            metrics: None,
        }
    }
}

impl std::fmt::Debug for EngineOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineOptions")
            .field("threads", &self.threads)
            .field("timeout", &self.timeout)
            .field("serial_construction", &self.serial_construction)
            .field("single_task_per_seed", &self.single_task_per_seed)
            .field("stop_flag", &self.stop_flag)
            .field("pin_threads", &self.pin_threads)
            .field("sched_hook", &self.sched_hook.as_ref().map(|_| ".."))
            .field("metrics", &self.metrics)
            .finish()
    }
}

/// Per-seed shared state for one stage.
struct Slot {
    seed: SeedGraph,
    pairs: Option<PairMatrix>,
}

/// A unit of work: a branch ⟨P, C, X⟩ on a stage slot's seed subgraph. The
/// snapshot is a single-buffer POD ([`SavedTask`]), so queueing, stealing
/// and re-queueing a task moves one allocation, never three.
struct Task {
    slot: usize,
    snap: SavedTask,
}

/// Counts maximal k-plexes in parallel. Returns the count and merged stats.
/// Accepts any [`GraphStore`] backend, same as the serial entry points.
pub fn par_enumerate_count<G: GraphStore + ?Sized>(
    g: &G,
    params: Params,
    cfg: &AlgoConfig,
    opts: &EngineOptions,
) -> (u64, SearchStats) {
    let (sinks, stats) = run_parallel(g, params, cfg, opts, CountSink::default);
    (sinks.into_iter().map(|s| s.count).sum(), stats)
}

/// Collects all maximal k-plexes in parallel, in canonical sorted order.
pub fn par_enumerate_collect<G: GraphStore + ?Sized>(
    g: &G,
    params: Params,
    cfg: &AlgoConfig,
    opts: &EngineOptions,
) -> (Vec<Vec<VertexId>>, SearchStats) {
    let (sinks, stats) = run_parallel(g, params, cfg, opts, CollectSink::default);
    let mut all: Vec<Vec<VertexId>> = sinks.into_iter().flat_map(|s| s.plexes).collect();
    all.sort();
    (all, stats)
}

/// The generic engine: one sink per worker, merged stats.
pub fn run_parallel<G, S, F>(
    g: &G,
    params: Params,
    cfg: &AlgoConfig,
    opts: &EngineOptions,
    make_sink: F,
) -> (Vec<S>, SearchStats)
where
    G: GraphStore + ?Sized,
    S: PlexSink + Send,
    F: Fn() -> S + Sync,
{
    let prep = prepare(g, params);
    run_parallel_prepared(&prep, params, cfg, opts, make_sink)
}

/// The engine over an already [`prepare`]d problem. Long-lived callers (the
/// service front-end) cache the `Prepared` value — the expensive load +
/// (q−k)-core reduction + degeneracy ordering — and re-enter the engine once
/// per job; `prep` must have been built with the same `q − k` as `params`.
pub fn run_parallel_prepared<S, F>(
    prep: &Prepared,
    params: Params,
    cfg: &AlgoConfig,
    opts: &EngineOptions,
    make_sink: F,
) -> (Vec<S>, SearchStats)
where
    S: PlexSink + Send,
    F: Fn() -> S + Sync,
{
    let m = opts.threads.max(1);
    let stop = opts
        .stop_flag
        .clone()
        .unwrap_or_else(|| Arc::new(AtomicBool::new(false)));
    let n = prep.graph.num_vertices();
    let mut total = SearchStats::default();
    let mut sinks: Vec<S> = (0..m).map(|_| make_sink()).collect();
    if n < params.q {
        return (sinks, total);
    }

    if opts.serial_construction {
        // FP-style: build every slot up-front, one big stage.
        let mut builder = SeedBuilder::new(n);
        let mut slots = Vec::new();
        for &sv in &prep.decomp.order {
            if stop.load(Ordering::Acquire) {
                break;
            }
            if let Some(seed) = builder.build(&prep.graph, &prep.decomp, sv, params, cfg) {
                total.seed_graphs += 1;
                total.seed_pruned_vertices += seed.pruned_vertices;
                let pairs = cfg.use_r2.then(|| PairMatrix::build(&seed, params));
                slots.push(Slot { seed, pairs });
            }
        }
        let filled: Vec<OnceLock<Slot>> = slots
            .into_iter()
            .map(|s| {
                let cell = OnceLock::new();
                cell.set(s).ok().expect("fresh cell");
                cell
            })
            .collect();
        let stage_stats = run_stage(
            &prep.map, params, cfg, opts, &filled, None, &stop, &mut sinks,
        );
        total.merge(&stage_stats);
        return (sinks, total);
    }

    // Eligibility pre-filter: the builder's cheapest gate (enough later
    // neighbours to host a q-plex) rejects the vast majority of vertices
    // without building anything.
    let mut eligible: Vec<VertexId> = Vec::new();
    let mut scratch = Vec::new();
    for &v in &prep.decomp.order {
        let later = prep
            .graph
            .row(v, &mut scratch)
            .iter()
            .filter(|&&w| prep.decomp.before(v, w))
            .count();
        if later + params.k >= params.q {
            eligible.push(v);
        }
    }
    // One spawn for the whole run: worker w builds eligible seeds w, w+M,
    // w+2M, … (parallel construction, per-worker task locality) and all
    // workers then drain with stealing. Spawning fresh threads per batch of
    // M seeds would cost thousands of thread spawns on large inputs.
    let slots: Vec<OnceLock<Slot>> = (0..eligible.len()).map(|_| OnceLock::new()).collect();
    let stage_stats = run_stage(
        &prep.map,
        params,
        cfg,
        opts,
        &slots,
        Some((prep, &eligible)),
        &stop,
        &mut sinks,
    );
    total.merge(&stage_stats);
    for slot in &slots {
        if let Some(s) = slot.get() {
            total.seed_graphs += 1;
            total.seed_pruned_vertices += s.seed.pruned_vertices;
        }
    }
    (sinks, total)
}

/// Runs one stage to completion on the work-stealing scheduler
/// ([`crate::sched`]): a global injector, per-worker LIFO deques with
/// local-pop → injector-batch-steal → peer-steal find order, and
/// park/unpark idling (no sleep-polling — `kplex-lint` enforces that).
///
/// When `construct` is provided, worker `i` builds seeds `i, i+M, …` and
/// publishes their sub-tasks as it goes; each worker holds a *construction
/// token* in the scheduler's `pending` count while it may still create
/// tasks, so early finishers start stealing immediately (no barrier) and
/// the stage cannot terminate under a still-constructing worker. With
/// `None` the slots are pre-filled and all tasks go through the injector,
/// where workers spread them via batched steals.
#[allow(clippy::too_many_arguments)]
fn run_stage<S: PlexSink + Send>(
    id_map: &[VertexId],
    params: Params,
    cfg: &AlgoConfig,
    opts: &EngineOptions,
    slots: &[OnceLock<Slot>],
    construct: Option<(&Prepared, &[VertexId])>,
    stop: &Arc<AtomicBool>,
    sinks: &mut [S],
) -> SearchStats {
    let m = sinks.len();
    let (sched, ctxs) = Scheduler::new(SchedConfig {
        workers: m,
        pin: opts.pin_threads,
        hook: opts.sched_hook.clone(),
        metrics: opts.metrics.clone(),
    });

    let mut dealer_stats = SearchStats::default();
    if construct.is_none() {
        // Pre-filled slots: inject everything before spawning workers.
        for (si, slot) in slots.iter().enumerate() {
            let slot_ref = slot.get().expect("pre-filled");
            for t in make_tasks(si, slot_ref, params, cfg, opts, &mut dealer_stats) {
                sched.inject(t);
            }
        }
    } else {
        // One construction token per worker, released when that worker's
        // construction loop ends (see the doc comment above).
        sched.count_in(m);
    }

    let mut worker_stats: Vec<SearchStats> = (0..m).map(|_| SearchStats::default()).collect();
    std::thread::scope(|scope| {
        let sched = &sched;
        let mut join_handles = Vec::new();
        for ((ctx, sink), wstats) in ctxs
            .into_iter()
            .zip(sinks.iter_mut())
            .zip(worker_stats.iter_mut())
        {
            join_handles.push(scope.spawn(move || {
                let wid = ctx.wid();
                // Attach on the worker thread: CPU pinning (when enabled)
                // happens here, before the builder/searcher allocations, so
                // first-touch NUMA policy places them on the local node.
                let handle = ctx.attach(sched);
                // Phase 1: construction (when not pre-filled). Worker w
                // builds every M-th eligible seed and publishes its tasks
                // as it goes — parked siblings are woken to steal them, so
                // a skewed seed no longer idles the rest of the pool.
                if let Some((prep, seeds)) = construct {
                    let mut builder = SeedBuilder::new(prep.graph.num_vertices());
                    let mut idx = wid;
                    while idx < seeds.len() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        if let Some(seed) =
                            builder.build(&prep.graph, &prep.decomp, seeds[idx], params, cfg)
                        {
                            let pairs = cfg.use_r2.then(|| PairMatrix::build(&seed, params));
                            slots[idx]
                                .set(Slot { seed, pairs })
                                .ok()
                                .expect("slot filled once");
                            let slot_ref = slots[idx].get().expect("just set");
                            for t in make_tasks(idx, slot_ref, params, cfg, opts, wstats) {
                                handle.push(t);
                            }
                        }
                        idx += m;
                    }
                    handle.count_out();
                }
                // Phase 2: drain. `next()` finds work (own deque → injector
                // → peers, same-socket first) and parks while there is
                // none; `None` is the termination handshake (pending == 0).
                let mut sink = MapSink::new(sink, id_map);
                let handle = &handle;
                // Cache the searcher across consecutive tasks on one slot.
                let mut cur: Option<(usize, Searcher)> = None;
                while let Some(task) = handle.next() {
                    // A raised stop flag (external cancel or a sibling's
                    // early-stopping sink) drains the queues without
                    // running: tasks still count out so stage termination
                    // stays exact and parked workers get their final wake.
                    if stop.load(Ordering::Acquire) {
                        handle.count_out();
                        continue;
                    }
                    let slot_ref = slots[task.slot].get().expect("slot set before tasks");
                    let searcher = match &mut cur {
                        Some((sid, s)) if *sid == task.slot => s,
                        _ => {
                            if let Some((_, old)) = cur.take() {
                                wstats.merge(&old.stats);
                            }
                            let mut s =
                                Searcher::new(&slot_ref.seed, params, cfg, slot_ref.pairs.as_ref());
                            s.set_time_budget(opts.timeout);
                            s.set_stop_flag(Some(stop.clone()));
                            // Deferred branches (timeout splits) are
                            // published mid-task: while peers are parked
                            // they overflow to the global injector and wake
                            // one, so a straggler's spill-off is picked up
                            // while the straggler is still running.
                            let slot_id = task.slot;
                            s.set_spawn_hook(Some(Box::new(move |snap| {
                                handle.push_overflow(Task {
                                    slot: slot_id,
                                    snap,
                                });
                            })));
                            cur = Some((task.slot, s));
                            &mut cur.as_mut().expect("just set").1
                        }
                    };
                    let flow =
                        searcher.run_task(task.snap.p(), task.snap.c(), task.snap.x(), &mut sink);
                    if flow == SinkFlow::Stop {
                        // Propagate an early-stopping sink to every worker,
                        // not just this one: siblings observe the flag inside
                        // their own branch recursion (via the searcher's
                        // polled check), before their next task, and in the
                        // construction phase.
                        stop.store(true, Ordering::Release);
                    }
                    // Children were counted in by the spawn hook during
                    // run_task, so they precede this count-out in program
                    // order — the termination invariant holds.
                    handle.count_out();
                }
                if let Some((_, old)) = cur.take() {
                    wstats.merge(&old.stats);
                };
            }));
        }
        for h in join_handles {
            h.join().expect("worker panicked");
        }
    });

    let mut merged = dealer_stats;
    for ws in &worker_stats {
        merged.merge(ws);
    }
    merged
}

/// Builds the initial tasks for one slot, accumulating sub-task counters
/// (generated / R1-pruned) into `stats`.
fn make_tasks(
    slot: usize,
    s: &Slot,
    params: Params,
    cfg: &AlgoConfig,
    opts: &EngineOptions,
    stats: &mut SearchStats,
) -> Vec<Task> {
    if opts.single_task_per_seed {
        stats.subtasks += 1;
        let c: Vec<u32> = (1..s.seed.len() as u32).collect();
        let x: Vec<u32> = (0..s.seed.xout.len() as u32)
            .map(|i| i | XOUT_FLAG)
            .collect();
        return vec![Task {
            slot,
            snap: SavedTask::new(&[0], &c, &x),
        }];
    }
    collect_subtasks(&s.seed, params, cfg, s.pairs.as_ref(), stats)
        .into_iter()
        .map(|snap| Task { slot, snap })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kplex_core::enumerate_collect;
    use kplex_graph::{gen, CsrGraph};

    fn check_parallel_matches_serial(g: &CsrGraph, k: usize, q: usize, opts: &EngineOptions) {
        let params = Params::new(k, q).unwrap();
        let cfg = AlgoConfig::ours();
        let (serial, _) = enumerate_collect(g, params, &cfg);
        let (par, _) = par_enumerate_collect(g, params, &cfg, opts);
        assert_eq!(par, serial);
    }

    #[test]
    fn two_threads_match_serial() {
        let g = gen::gnp(40, 0.3, 5);
        check_parallel_matches_serial(&g, 2, 4, &EngineOptions::with_threads(2));
    }

    #[test]
    fn four_threads_match_serial_on_clustered_graph() {
        let g = gen::powerlaw_cluster(200, 5, 0.7, 8);
        check_parallel_matches_serial(&g, 3, 6, &EngineOptions::with_threads(4));
    }

    #[test]
    fn tiny_timeout_still_correct() {
        // A 0ns timeout forces maximal task splitting; results must not
        // change, only the split count.
        let g = gen::powerlaw_cluster(120, 5, 0.7, 3);
        let params = Params::new(2, 5).unwrap();
        let cfg = AlgoConfig::ours();
        let (serial, _) = enumerate_collect(&g, params, &cfg);
        let mut opts = EngineOptions::with_threads(3);
        opts.timeout = Some(Duration::from_nanos(0));
        let (par, stats) = par_enumerate_collect(&g, params, &cfg, &opts);
        assert_eq!(par, serial);
        assert!(stats.timeout_splits > 0, "expected task splitting");
    }

    #[test]
    fn tiny_timeout_still_correct_on_deep_planted_plexes() {
        // Large planted plexes make the search tree deep, so a 0ns timeout
        // produces long defer → re-queue → defer chains: every branch of the
        // plex-sized subtree goes through a SavedTask at least once. This is
        // the worst case for the save path (the legacy kernel re-cloned the
        // O(depth) plex vector per save, O(depth²) per chain; the arena
        // kernel snapshots it into one buffer per save).
        // A dense background keeps the (q−k)-core alive around the plexes,
        // so the searcher genuinely branches instead of terminating on the
        // whole-set shortcut.
        let bg = gen::gnm(150, 1100, 17);
        let plant = gen::PlantedPlexConfig {
            count: 3,
            size_lo: 12,
            size_hi: 14,
            missing: 1,
            overlap: true,
        };
        let (g, _) = gen::planted_plexes(&bg, &plant, 23);
        let params = Params::new(2, 8).unwrap();
        let cfg = AlgoConfig::ours();
        let (serial, serial_stats) = enumerate_collect(&g, params, &cfg);
        assert!(!serial.is_empty(), "planted instance must have results");
        assert!(
            serial_stats.branch_calls > serial_stats.subtasks,
            "instance must actually recurse (got {} branches over {} tasks)",
            serial_stats.branch_calls,
            serial_stats.subtasks
        );
        let mut opts = EngineOptions::with_threads(4);
        opts.timeout = Some(Duration::from_nanos(0));
        let (par, stats) = par_enumerate_collect(&g, params, &cfg, &opts);
        assert_eq!(par, serial);
        assert!(stats.timeout_splits > 0, "expected task splitting");
        // Deferral is transparent: the re-run branches re-tighten, so the
        // total outputs stay exactly the serial ones.
        assert_eq!(stats.outputs, serial_stats.outputs);
    }

    #[test]
    fn no_timeout_matches_serial() {
        let g = gen::gnp(50, 0.3, 9);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        let (serial, _) = enumerate_collect(&g, params, &cfg);
        let mut opts = EngineOptions::with_threads(4);
        opts.timeout = None;
        let (par, stats) = par_enumerate_collect(&g, params, &cfg, &opts);
        assert_eq!(par, serial);
        assert_eq!(stats.timeout_splits, 0);
    }

    #[test]
    fn fp_layout_parallel_matches() {
        let g = gen::gnp(40, 0.3, 11);
        let params = Params::new(2, 4).unwrap();
        let fp_cfg = kplex_baselines::fp_config();
        let mut sink = CollectSink::default();
        kplex_baselines::enumerate_fp(&g, params, &mut sink);
        let serial = sink.into_sorted();
        let opts = EngineOptions {
            timeout: None,
            serial_construction: true,
            single_task_per_seed: true,
            ..EngineOptions::with_threads(3)
        };
        let (par, _) = par_enumerate_collect(&g, params, &fp_cfg, &opts);
        assert_eq!(par, serial);
    }

    #[test]
    fn single_thread_engine_equals_serial_stats_outputs() {
        let g = gen::gnp(30, 0.35, 2);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        let (serial, s1) = enumerate_collect(&g, params, &cfg);
        let mut opts = EngineOptions::with_threads(1);
        opts.timeout = None;
        let (par, s2) = par_enumerate_collect(&g, params, &cfg, &opts);
        assert_eq!(par, serial);
        assert_eq!(s1.outputs, s2.outputs);
        assert_eq!(s1.subtasks, s2.subtasks);
    }

    /// Sink enforcing a *global* result cap across all workers.
    struct CapSink {
        seen: Arc<std::sync::atomic::AtomicU64>,
        cap: u64,
        mine: u64,
    }

    impl PlexSink for CapSink {
        fn report(&mut self, _vertices: &[VertexId]) -> SinkFlow {
            self.mine += 1;
            // ordering: approximate global cap in a test sink; overshoot by
            // a few results is tolerated by the assertions.
            if self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.cap {
                SinkFlow::Stop
            } else {
                SinkFlow::Continue
            }
        }
    }

    /// A deep planted instance whose serial search does real branching work.
    fn deep_instance() -> (CsrGraph, Params) {
        let bg = gen::gnm(150, 1100, 17);
        let plant = gen::PlantedPlexConfig {
            count: 3,
            size_lo: 12,
            size_hi: 14,
            missing: 1,
            overlap: true,
        };
        let (g, _) = gen::planted_plexes(&bg, &plant, 23);
        (g, Params::new(2, 8).unwrap())
    }

    #[test]
    fn result_cap_stops_all_workers_promptly() {
        let (g, params) = deep_instance();
        let cfg = AlgoConfig::ours();
        let (_, serial_stats) = enumerate_collect(&g, params, &cfg);
        assert!(serial_stats.outputs > 4, "instance must have results");
        let m = 4;
        let mut opts = EngineOptions::with_threads(m);
        opts.timeout = None; // tasks are whole subtrees: stop must land *inside* them
        let seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let cap = 1u64;
        let (sinks, stats) = run_parallel(&g, params, &cfg, &opts, || CapSink {
            seen: seen.clone(),
            cap,
            mine: 0,
        });
        let total: u64 = sinks.iter().map(|s| s.mine).sum();
        // The cap plus at most one in-flight report per worker.
        assert!(total >= cap, "the cap itself must be reached");
        assert!(
            total <= cap + m as u64,
            "stop did not propagate across workers: {total} results for cap {cap}"
        );
        // Promptness: the polled in-kernel stop check must abort result-free
        // subtrees too, so the capped run does a fraction of the full work.
        assert!(
            stats.branch_calls < serial_stats.branch_calls / 2,
            "workers kept searching after the cap: {} vs serial {}",
            stats.branch_calls,
            serial_stats.branch_calls
        );
    }

    #[test]
    fn pre_raised_stop_flag_yields_nothing() {
        let (g, params) = deep_instance();
        let cfg = AlgoConfig::ours();
        let mut opts = EngineOptions::with_threads(3);
        opts.stop_flag = Some(Arc::new(AtomicBool::new(true)));
        let (count, stats) = par_enumerate_count(&g, params, &cfg, &opts);
        assert_eq!(count, 0);
        assert_eq!(stats.seed_graphs, 0, "construction must be skipped");
    }

    /// A [`kplex_core::ChannelSink`] that sleeps briefly per report, so a
    /// cross-thread cancel reliably lands while the engine is mid-run.
    struct SlowChannelSink(kplex_core::ChannelSink);

    impl PlexSink for SlowChannelSink {
        fn report(&mut self, vertices: &[VertexId]) -> SinkFlow {
            std::thread::sleep(Duration::from_micros(200));
            self.0.report(vertices)
        }
    }

    #[test]
    fn channel_sink_cancel_mid_run_stops_early() {
        // Many results (low q) plus a paced sink: the full run would take
        // >> the drainer's reaction time, so the cancel cannot lose the
        // race even on a loaded machine.
        let g = gen::gnp(60, 0.5, 21);
        let params = Params::new(2, 4).unwrap();
        let cfg = AlgoConfig::ours();
        let (serial, _) = enumerate_collect(&g, params, &cfg);
        assert!(serial.len() > 1000, "need a large result set");
        let flag = Arc::new(AtomicBool::new(false));
        let mut opts = EngineOptions::with_threads(4);
        opts.stop_flag = Some(flag.clone());
        let (tx, rx) = std::sync::mpsc::channel::<Vec<VertexId>>();
        let drainer = {
            let flag = flag.clone();
            std::thread::spawn(move || {
                let mut received = 0u64;
                while rx.recv().is_ok() {
                    received += 1;
                    flag.store(true, Ordering::Release);
                }
                received
            })
        };
        // `mpsc::Sender` is `Sync`, so the factory clones it directly.
        let (_, stats) = run_parallel(&g, params, &cfg, &opts, || {
            SlowChannelSink(kplex_core::ChannelSink::new(tx.clone(), flag.clone()))
        });
        drop(tx);
        let received = drainer.join().expect("drainer panicked");
        assert!(
            received >= 1,
            "cancellation raced ahead of the first result"
        );
        assert!(
            (received as usize) < serial.len(),
            "cancel mid-run did not stop the engine early"
        );
        // The sink re-checks the flag after the kernel counted the output, so
        // a report can be counted but dropped — never the other way round.
        assert!(stats.outputs >= received, "streamed more than was reported");
    }

    #[test]
    fn prepared_reuse_matches_fresh_runs() {
        let g = gen::powerlaw_cluster(150, 4, 0.6, 7);
        let params = Params::new(2, 5).unwrap();
        let cfg = AlgoConfig::ours();
        let opts = EngineOptions::with_threads(3);
        let (reference, _) = par_enumerate_count(&g, params, &cfg, &opts);
        let prep = kplex_core::prepare(&g, params);
        for _ in 0..3 {
            let (sinks, _) = run_parallel_prepared(&prep, params, &cfg, &opts, CountSink::default);
            let count: u64 = sinks.iter().map(|s| s.count).sum();
            assert_eq!(
                count, reference,
                "re-entering on a cached Prepared diverged"
            );
        }
    }

    #[test]
    fn count_and_collect_agree() {
        let g = gen::powerlaw_cluster(150, 4, 0.6, 7);
        let params = Params::new(2, 5).unwrap();
        let cfg = AlgoConfig::ours();
        let opts = EngineOptions::with_threads(4);
        let (count, _) = par_enumerate_count(&g, params, &cfg, &opts);
        let (collected, _) = par_enumerate_collect(&g, params, &cfg, &opts);
        assert_eq!(count as usize, collected.len());
    }
}
