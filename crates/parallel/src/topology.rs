//! CPU/NUMA topology detection, worker placement, and thread pinning.
//!
//! The scheduler wants three things from the machine: how many CPUs there
//! are, which socket (physical package) each belongs to, and a way to pin a
//! worker thread to one CPU. Everything is read from
//! `/sys/devices/system/cpu` (falling back to a flat single-socket layout
//! when sysfs is unavailable — macOS, restricted containers), and pinning
//! is a raw `sched_setaffinity` syscall on Linux x86_64/aarch64 — the
//! workspace links no libc, same situation as the graph crate's raw `mmap`.
//!
//! Placement policy: workers fill sockets in order (worker 0..s₀ on socket
//! 0, the next batch on socket 1, …), wrapping when there are more workers
//! than CPUs. Stealing prefers same-socket victims first — a steal inside a
//! socket moves a task between caches that share an LLC, a cross-socket
//! steal drags it over the interconnect — and per-worker state (seed
//! builders, searcher arenas) is allocated on the worker thread *after*
//! pinning, so first-touch NUMA policy places those pages on the worker's
//! own node.

/// One CPU as placement sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cpu {
    /// Kernel CPU id (the `N` of `cpuN`).
    pub id: usize,
    /// Physical package (socket) id; `0` when sysfs does not expose one.
    pub socket: usize,
}

/// The machine layout the scheduler plans against.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Online CPUs, sorted by socket then id.
    pub cpus: Vec<Cpu>,
    /// Number of distinct sockets (≥ 1 whenever `cpus` is non-empty).
    pub sockets: usize,
}

impl Topology {
    /// Reads the live topology from sysfs; falls back to a flat
    /// single-socket layout sized by `available_parallelism` when sysfs is
    /// missing or unparsable.
    pub fn detect() -> Topology {
        Self::from_sysfs("/sys/devices/system/cpu").unwrap_or_else(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            Topology::flat(n)
        })
    }

    /// A synthetic flat topology: `n` CPUs on one socket.
    pub fn flat(n: usize) -> Topology {
        Topology {
            cpus: (0..n.max(1)).map(|id| Cpu { id, socket: 0 }).collect(),
            sockets: 1,
        }
    }

    /// Parses `<root>/online` + `<root>/cpu*/topology/physical_package_id`.
    fn from_sysfs(root: &str) -> Option<Topology> {
        let online = std::fs::read_to_string(format!("{root}/online")).ok()?;
        let ids = parse_cpu_list(online.trim())?;
        if ids.is_empty() {
            return None;
        }
        let mut cpus: Vec<Cpu> = ids
            .into_iter()
            .map(|id| {
                let socket =
                    std::fs::read_to_string(format!("{root}/cpu{id}/topology/physical_package_id"))
                        .ok()
                        .and_then(|s| s.trim().parse().ok())
                        .unwrap_or(0);
                Cpu { id, socket }
            })
            .collect();
        cpus.sort_by_key(|c| (c.socket, c.id));
        let sockets = cpus
            .iter()
            .map(|c| c.socket)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        Some(Topology { cpus, sockets })
    }

    /// Assigns `m` workers to CPUs: fill sockets in order, wrap when
    /// oversubscribed. Returns one [`Cpu`] per worker.
    pub fn place(&self, m: usize) -> Vec<Cpu> {
        (0..m).map(|w| self.cpus[w % self.cpus.len()]).collect()
    }

    /// Per-worker steal order over a placement: every other worker exactly
    /// once, same-socket victims first, each tier rotated by the thief's
    /// index so concurrent thieves fan out over different victims instead
    /// of all hammering worker 0.
    pub fn steal_order(placement: &[Cpu]) -> Vec<Vec<usize>> {
        let m = placement.len();
        (0..m)
            .map(|w| {
                let mut local: Vec<usize> = Vec::new();
                let mut remote: Vec<usize> = Vec::new();
                for off in 1..m {
                    let v = (w + off) % m;
                    if placement[v].socket == placement[w].socket {
                        local.push(v);
                    } else {
                        remote.push(v);
                    }
                }
                local.extend(remote);
                local
            })
            .collect()
    }
}

/// Parses a kernel CPU list (`0`, `0-7`, `0-3,8-11,14`) into sorted ids.
pub fn parse_cpu_list(s: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    if s.is_empty() {
        return Some(out);
    }
    for part in s.split(',') {
        let part = part.trim();
        if let Some((lo, hi)) = part.split_once('-') {
            let lo: usize = lo.trim().parse().ok()?;
            let hi: usize = hi.trim().parse().ok()?;
            if hi < lo || hi - lo > 4096 {
                return None;
            }
            out.extend(lo..=hi);
        } else {
            out.push(part.parse().ok()?);
        }
    }
    out.sort_unstable();
    out.dedup();
    Some(out)
}

/// Pins the calling thread to `cpu`. Returns whether the kernel accepted
/// the mask; on non-Linux (or non-x86_64/aarch64) targets this is a no-op
/// returning `false`. Best-effort by design: a failed pin degrades to the
/// unpinned behaviour, never to an error.
pub fn pin_current_thread(cpu: usize) -> bool {
    imp::pin(cpu)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    //! Raw `sched_setaffinity(0, len, mask)` — pid 0 = calling thread.

    #[cfg(target_arch = "x86_64")]
    const SYS_SCHED_SETAFFINITY: usize = 203;
    #[cfg(target_arch = "aarch64")]
    const SYS_SCHED_SETAFFINITY: usize = 122;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall3(nr: usize, a1: usize, a2: usize, a3: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall3(nr: usize, a1: usize, a2: usize, a3: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            options(nostack),
        );
        ret
    }

    pub(super) fn pin(cpu: usize) -> bool {
        // A fixed 1024-bit mask covers every machine this targets; the
        // kernel only requires the mask to name at least one online CPU.
        let mut mask = [0u64; 16];
        let word = cpu / 64;
        if word >= mask.len() {
            return false;
        }
        mask[word] = 1u64 << (cpu % 64);
        let ret = unsafe {
            syscall3(
                SYS_SCHED_SETAFFINITY,
                0,
                std::mem::size_of_val(&mask),
                mask.as_ptr() as usize,
            )
        };
        ret == 0
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    pub(super) fn pin(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_list_forms_parse() {
        assert_eq!(parse_cpu_list("0").unwrap(), vec![0]);
        assert_eq!(parse_cpu_list("0-3").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpu_list("0-2,5,7-8").unwrap(), vec![0, 1, 2, 5, 7, 8]);
        assert_eq!(parse_cpu_list("").unwrap(), Vec::<usize>::new());
        assert!(parse_cpu_list("x").is_none());
        assert!(parse_cpu_list("5-2").is_none());
    }

    #[test]
    fn detect_never_panics_and_is_nonempty() {
        let t = Topology::detect();
        assert!(!t.cpus.is_empty());
        assert!(t.sockets >= 1);
    }

    #[test]
    fn placement_wraps_when_oversubscribed() {
        let t = Topology::flat(2);
        let p = t.place(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p[0].id, 0);
        assert_eq!(p[1].id, 1);
        assert_eq!(p[2].id, 0);
        assert_eq!(p[4].id, 0);
    }

    #[test]
    fn steal_order_prefers_same_socket() {
        // 4 workers over 2 sockets: 0,1 on socket 0; 2,3 on socket 1.
        let placement = vec![
            Cpu { id: 0, socket: 0 },
            Cpu { id: 1, socket: 0 },
            Cpu { id: 2, socket: 1 },
            Cpu { id: 3, socket: 1 },
        ];
        let orders = Topology::steal_order(&placement);
        assert_eq!(orders[0], vec![1, 2, 3]);
        assert_eq!(orders[2], vec![3, 0, 1]);
        // Every worker sees every other exactly once.
        for (w, o) in orders.iter().enumerate() {
            let mut all: Vec<usize> = o.clone();
            all.push(w);
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn steal_order_rotation_spreads_thieves() {
        let placement = vec![Cpu { id: 0, socket: 0 }; 4];
        let orders = Topology::steal_order(&placement);
        // All same socket: order is a pure rotation, so first victims differ.
        let firsts: Vec<usize> = orders.iter().map(|o| o[0]).collect();
        assert_eq!(firsts, vec![1, 2, 3, 0]);
    }

    #[test]
    fn pin_is_best_effort() {
        // On Linux pinning to CPU 0 should succeed; elsewhere it must
        // return false rather than fail. Either way: no panic.
        let _ = pin_current_thread(0);
    }
}
